"""Tests for reclaim scanning, direct reclaim, kswapd, and throttles."""

import pytest

from repro.core import PredictionService, PSSConfig
from repro.mm.blockdev import BlockDevice
from repro.mm.reclaim import ReclaimController, SCAN_CHUNK
from repro.mm.state import MemoryState
from repro.mm.throttle import (
    EFFICIENCY_THRESHOLD,
    GormanThrottle,
    NeverThrottle,
    PSSThrottle,
    ReclaimWindow,
    VanillaCongestionWait,
)
from repro.sim.engine import Engine
from repro.sim.process import spawn
from repro.sim.rng import RngStreams


def make_world(policy=None, total=1000):
    engine = Engine()
    mm = MemoryState(total=total)
    device = BlockDevice(engine, service_ns_per_page=1000,
                         queue_limit=64)
    controller = ReclaimController(
        engine, mm, device, policy or NeverThrottle(), RngStreams(0)
    )
    return engine, mm, device, controller


def drain(engine, body):
    result = []

    def wrapper():
        value = yield from body
        result.append(value)

    spawn(engine, wrapper())
    engine.run()
    return result[0] if result else None


class TestScanRound:
    def test_clean_pages_reclaimed_first(self):
        engine, mm, device, controller = make_world()
        for _ in range(100):
            mm.allocate("file_clean")
        window = controller.scan_round()
        assert window.nr_reclaimed > 0
        assert window.nr_scanned <= SCAN_CHUNK
        mm.check()

    def test_dirty_pages_go_to_writeback(self):
        engine, mm, device, controller = make_world()
        for _ in range(100):
            mm.allocate("file_dirty")
        window = controller.scan_round()
        assert window.nr_reclaimed == 0
        assert mm.writeback > 0
        assert device.queue_depth == mm.writeback
        mm.check()

    def test_writeback_completion_frees_pages(self):
        engine, mm, device, controller = make_world()
        for _ in range(50):
            mm.allocate("file_dirty")
        controller.scan_round()
        free_before = mm.free
        engine.run()
        assert mm.free > free_before
        assert mm.writeback == 0
        mm.check()

    def test_empty_memory_scans_nothing(self):
        engine, mm, device, controller = make_world()
        window = controller.scan_round()
        assert window.nr_scanned == 0

    def test_anon_pages_swapped(self):
        engine, mm, device, controller = make_world()
        for _ in range(200):
            mm.allocate("anon")
        controller.scan_round()
        assert mm.stats.writeback_submitted > 0
        mm.check()


class TestDirectReclaim:
    def test_recovers_free_pages(self):
        engine, mm, device, controller = make_world()
        # Fill memory with clean pages past the min watermark.
        while not mm.below_min:
            mm.allocate("file_clean")
        drain(engine, controller.direct_reclaim())
        assert not mm.below_min
        assert mm.stats.direct_reclaims == 1
        mm.check()

    def test_bounded_rounds_under_hopeless_pressure(self):
        engine, mm, device, controller = make_world()
        # All dirty, tiny device: reclaim cannot finish in one call.
        while mm.free > 0:
            mm.allocate("file_dirty")
        drain(engine, controller.direct_reclaim())
        mm.check()  # must terminate and conserve pages

    def test_allocate_blocks_until_success(self):
        engine, mm, device, controller = make_world()
        while mm.free > 0:
            mm.allocate("file_dirty")
        got = drain(engine, controller.allocate("anon"))
        assert got is True
        assert mm.anon == 1
        mm.check()

    def test_throttle_sleep_counted(self):
        policy = VanillaCongestionWait(timeout_ns=1000)
        engine, mm, device, controller = make_world(policy)
        while mm.free > 0:
            mm.allocate("file_dirty")
        device.submit(60)  # force congestion
        drain(engine, controller.direct_reclaim())
        assert mm.stats.throttle_sleeps > 0
        assert mm.stats.throttle_sleep_ns > 0


class TestKswapd:
    def test_kswapd_reclaims_below_low(self):
        engine, mm, device, controller = make_world()
        while mm.free >= mm.low_pages:
            mm.allocate("file_clean")
        spawn(engine, controller.kswapd())
        engine.run(until=5_000_000)
        assert mm.stats.kswapd_runs > 0
        assert mm.free >= mm.low_pages
        mm.check()


class TestThrottlePolicies:
    def window(self, scanned=32, reclaimed=4):
        return ReclaimWindow(nr_scanned=scanned, nr_reclaimed=reclaimed)

    def test_never_never_sleeps(self):
        engine, mm, device, _ = make_world()
        assert NeverThrottle().consider(self.window(), mm, device, 0) == 0

    def test_vanilla_sleeps_full_timeout_when_congested(self):
        engine, mm, device, _ = make_world()
        policy = VanillaCongestionWait(timeout_ns=5000)
        assert policy.consider(self.window(), mm, device, 0) == 0
        device.submit(60)
        assert policy.consider(self.window(), mm, device, 0) == 5000

    def test_gorman_efficiency_gate(self):
        engine, mm, device, _ = make_world()
        policy = GormanThrottle(timeout_ns=8000)
        efficient = ReclaimWindow(nr_scanned=32, nr_reclaimed=16)
        assert policy.consider(efficient, mm, device, 0) == 0
        inefficient = ReclaimWindow(nr_scanned=32, nr_reclaimed=1)
        assert inefficient.efficiency < EFFICIENCY_THRESHOLD
        assert policy.consider(inefficient, mm, device, 0) > 0

    def test_gorman_dirty_pressure_case(self):
        engine, mm, device, _ = make_world()
        policy = GormanThrottle()
        while mm.free > mm.total * 0.3:
            mm.allocate("file_dirty")
        device.submit(40)
        efficient = ReclaimWindow(nr_scanned=32, nr_reclaimed=20)
        assert policy.consider(efficient, mm, device, 0) > 0

    def make_pss(self):
        service = PredictionService()
        client = service.connect(
            "reclaim", config=PSSConfig(num_features=3), batch_size=1,
        )
        return PSSThrottle(client), service

    def test_pss_cold_start_does_not_sleep(self):
        engine, mm, device, _ = make_world()
        policy, _ = self.make_pss()
        # Cold perceptron predicts >= 0, i.e. "do not sleep".
        assert policy.consider(self.window(), mm, device, 0) == 0.0

    def test_pss_learns_to_sleep_when_gaps_shrink(self):
        """Entries arriving ever faster after no-sleep decisions must
        teach the predictor to sleep."""
        engine, mm, device, _ = make_world()
        policy, _ = self.make_pss()
        window = ReclaimWindow(nr_scanned=32, nr_reclaimed=0)
        now = 0.0
        slept = False
        gap = 50_000.0
        for _ in range(200):
            sleep = policy.consider(window, mm, device, now)
            if sleep > 0:
                slept = True
                break
            gap *= 0.9  # entries keep accelerating
            now += gap
        assert slept

    def test_pss_probe_prevents_permanent_sleep(self):
        engine, mm, device, _ = make_world()
        policy, service = self.make_pss()
        # Force the predictor deeply negative.
        for _ in range(60):
            service.update("reclaim", [0, 30, 1000], False)
        window = ReclaimWindow(nr_scanned=32, nr_reclaimed=0)
        decisions = [
            policy.consider(window, mm, device, float(i) * 1000)
            for i in range(2 * policy.PROBE_INTERVAL + 2)
        ]
        assert any(d == 0 for d in decisions[1:])  # probes fired

    def test_pss_update_flow_reaches_service(self):
        engine, mm, device, _ = make_world()
        policy, service = self.make_pss()
        window = self.window()
        for i in range(5):
            policy.consider(window, mm, device, float(i) * 10_000)
        policy.client.flush()
        assert service.domain("reclaim").stats.predictions >= 5
        assert service.domain("reclaim").stats.updates >= 1
