"""Property-based tests for memory-management invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm import (
    GormanThrottle,
    NeverThrottle,
    StutterpConfig,
    VanillaCongestionWait,
    run_stutterp,
)
from repro.mm.blockdev import BlockDevice
from repro.mm.reclaim import ReclaimController
from repro.mm.state import MemoryState
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams

POLICIES = [NeverThrottle, VanillaCongestionWait, GormanThrottle]


class TestConservationUnderLoad:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 40), st.integers(0, 50),
           st.sampled_from(POLICIES))
    def test_pages_conserved_through_full_runs(self, workers, seed,
                                               policy_cls):
        """run_stutterp calls mm.check() at the end; this drives it
        across random worker counts, seeds, and policies."""
        result = run_stutterp(workers, policy_cls(), seed=seed,
                              duration_ns=20_000_000.0)
        assert result.vmstats.pgscan >= 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 64), st.integers(0, 20))
    def test_reclaim_rounds_conserve_pages(self, mix_seed, rounds):
        engine = Engine()
        mm = MemoryState(total=400)
        device = BlockDevice(engine, service_ns_per_page=500,
                             queue_limit=32)
        controller = ReclaimController(engine, mm, device,
                                       NeverThrottle(),
                                       RngStreams(mix_seed))
        rng = RngStreams(mix_seed).stream("mix")
        for _ in range(300):
            kind = rng.choice(["anon", "file_clean", "file_dirty"])
            if not mm.allocate(kind):
                break
        for _ in range(rounds):
            controller.scan_round()
            mm.check()
        engine.run()
        mm.check()
        # Eventually every submitted writeback completed.
        assert mm.writeback == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 64))
    def test_worker_mix_never_empty(self, workers):
        x, y, z = StutterpConfig(workers=workers).worker_mix()
        assert min(x, y, z) >= 1
