"""Tests for memory state, watermarks, and the block device."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mm.blockdev import BlockDevice
from repro.mm.state import MemoryState, Watermarks
from repro.sim.engine import Engine


class TestWatermarks:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            Watermarks(min_frac=0.2, low_frac=0.1, high_frac=0.3)

    def test_page_thresholds(self):
        mm = MemoryState(total=1000)
        assert mm.min_pages == 40
        assert mm.low_pages == 80
        assert mm.high_pages == 120

    def test_below_flags(self):
        mm = MemoryState(total=1000)
        mm.free = 39
        mm.anon = 961
        assert mm.below_min and mm.below_low
        mm.free, mm.anon = 79, 921
        assert not mm.below_min and mm.below_low
        mm.free, mm.anon = 120, 880
        assert not mm.below_low


class TestPageMovement:
    def test_starts_all_free(self):
        mm = MemoryState(total=500)
        assert mm.free == 500
        mm.check()

    def test_allocate_each_kind(self):
        mm = MemoryState(total=500)
        assert mm.allocate("anon")
        assert mm.allocate("file_clean")
        assert mm.allocate("file_dirty")
        assert mm.anon == mm.file_clean == mm.file_dirty == 1
        assert mm.free == 497
        mm.check()

    def test_allocate_unknown_kind(self):
        with pytest.raises(ValueError):
            MemoryState(total=500).allocate("huge")

    def test_allocate_fails_when_empty(self):
        mm = MemoryState(total=100)
        for _ in range(100):
            assert mm.allocate("anon")
        assert not mm.allocate("anon")
        mm.check()

    def test_writeback_cycle_conserves_pages(self):
        mm = MemoryState(total=500)
        for _ in range(10):
            mm.allocate("file_dirty")
        moved = mm.start_writeback(6)
        assert moved == 6
        assert mm.writeback == 6 and mm.file_dirty == 4
        done = mm.complete_writeback(6)
        assert done == 6
        assert mm.free == 500 - 4
        mm.check()

    def test_reclaim_clean_counts_steal(self):
        mm = MemoryState(total=500)
        for _ in range(8):
            mm.allocate("file_clean")
        got = mm.reclaim_clean(5)
        assert got == 5
        assert mm.stats.pgsteal == 5
        mm.check()

    def test_dirty_clean_page(self):
        mm = MemoryState(total=500)
        mm.allocate("file_clean")
        assert mm.dirty_clean_page()
        assert mm.file_dirty == 1 and mm.file_clean == 0
        assert not mm.dirty_clean_page()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(
        ["anon", "file_clean", "file_dirty", "wb", "done", "steal",
         "drop"]), max_size=120))
    def test_conservation_under_random_traffic(self, ops):
        mm = MemoryState(total=300)
        for op in ops:
            if op in ("anon", "file_clean", "file_dirty"):
                mm.allocate(op)
            elif op == "wb":
                mm.start_writeback(3)
            elif op == "done":
                mm.complete_writeback(2)
            elif op == "steal":
                mm.reclaim_clean(2)
            elif op == "drop":
                mm.drop_anon(2)
            mm.check()


class TestBlockDevice:
    def test_submit_and_complete(self):
        engine = Engine()
        device = BlockDevice(engine, service_ns_per_page=100,
                             queue_limit=10)
        done = []
        device.set_completion_handler(lambda n: done.append(n))
        assert device.submit(3) == 3
        engine.run()
        assert sum(done) == 3
        assert engine.now == pytest.approx(300)

    def test_queue_limit_enforced(self):
        engine = Engine()
        device = BlockDevice(engine, queue_limit=5)
        assert device.submit(10) == 5
        assert device.space == 0

    def test_congestion_flag(self):
        engine = Engine()
        device = BlockDevice(engine, queue_limit=100,
                             congestion_fraction=0.5)
        assert not device.congested
        device.submit(50)
        assert device.congested

    def test_estimated_drain(self):
        engine = Engine()
        device = BlockDevice(engine, service_ns_per_page=1000,
                             queue_limit=100)
        device.submit(30)
        assert device.estimated_drain_ns() == pytest.approx(30_000)
        assert device.estimated_drain_ns(to_depth=10) == \
            pytest.approx(20_000)

    def test_fifo_throughput(self):
        engine = Engine()
        device = BlockDevice(engine, service_ns_per_page=100,
                             queue_limit=1000)
        device.submit(100)
        engine.run(until=5_000)
        assert device.pages_written == 50  # one per 100 ns
