"""Integration tests for the stutterp workload and the Figure 6 harness."""

import pytest

from repro.core import PredictionService
from repro.mm import (
    FIGURE6_WORKERS,
    GormanThrottle,
    NeverThrottle,
    StutterpConfig,
    VanillaCongestionWait,
    compare_throttles,
    latency_improvement,
    run_stutterp,
)

SHORT = 60_000_000.0  # 60 ms runs keep the test suite fast


class TestConfig:
    def test_worker_mix_sums(self):
        for workers in FIGURE6_WORKERS:
            x, y, z = StutterpConfig(workers=workers).worker_mix()
            assert x >= 1 and y >= 1 and z >= 1
            assert x + y + z >= workers - 1  # rounding tolerance

    def test_figure6_axis_matches_paper(self):
        assert FIGURE6_WORKERS == (4, 7, 12, 21, 30, 48, 64)


class TestRunStutterp:
    def test_produces_samples_and_conserves_memory(self):
        result = run_stutterp(12, NeverThrottle(), seed=0,
                              duration_ns=SHORT)
        assert result.samples > 5
        assert result.average_latency_ns > 0
        assert result.policy == "never"

    def test_deterministic_for_seed(self):
        a = run_stutterp(7, GormanThrottle(), seed=3, duration_ns=SHORT)
        b = run_stutterp(7, GormanThrottle(), seed=3, duration_ns=SHORT)
        assert a.average_latency_ns == b.average_latency_ns

    def test_seed_changes_outcome(self):
        a = run_stutterp(30, GormanThrottle(), seed=1, duration_ns=SHORT)
        b = run_stutterp(30, GormanThrottle(), seed=2, duration_ns=SHORT)
        assert (a.average_latency_ns, a.vmstats.pgscan) != \
            (b.average_latency_ns, b.vmstats.pgscan)

    def test_pressure_grows_with_workers(self):
        light = run_stutterp(4, VanillaCongestionWait(), seed=0,
                             duration_ns=SHORT)
        heavy = run_stutterp(64, VanillaCongestionWait(), seed=0,
                             duration_ns=SHORT)
        assert heavy.vmstats.direct_reclaims > light.vmstats.direct_reclaims

    def test_reclaim_activity_recorded(self):
        result = run_stutterp(30, VanillaCongestionWait(), seed=0,
                              duration_ns=SHORT)
        assert result.vmstats.pgscan > 0
        assert result.vmstats.writeback_submitted > 0


class TestLatencyImprovement:
    def test_sign_convention(self):
        assert latency_improvement(200.0, 100.0) == pytest.approx(1.0)
        assert latency_improvement(100.0, 200.0) == pytest.approx(-0.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            latency_improvement(100.0, 0.0)


class TestCompareThrottles:
    def test_column_structure(self):
        column = compare_throttles(12, seed=0, pss_runs=2,
                                   duration_ns=SHORT,
                                   reference_seeds=1)
        assert column.workers == 12
        assert column.vanilla_latency_ns > 0
        assert len(column.pss_run_improvements) == 2

    def test_service_persists_across_pss_runs(self):
        service = PredictionService()
        compare_throttles(12, seed=0, pss_runs=2, service=service,
                          duration_ns=SHORT, reference_seeds=1)
        stats = service.domain("reclaim").stats
        assert stats.predictions > 0
