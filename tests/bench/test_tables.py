"""Tests for the bench formatting helpers and experiment drivers."""

from repro.bench.tables import format_table, pct, series_summary


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long-header"],
                            [["xxxxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])
        assert "long-header" in lines[0]

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestPct:
    def test_signs(self):
        assert pct(0.5) == "+50.0%"
        assert pct(-0.125) == "-12.5%"


class TestSeriesSummary:
    def test_short_series_verbatim(self):
        assert series_summary([1.0, 2.0]) == "1 -> 2"

    def test_long_series_downsampled(self):
        summary = series_summary(list(range(100)), points=4)
        assert summary.count("->") == 3
        assert summary.startswith("0")
        assert summary.endswith("99")

    def test_empty(self):
        assert series_summary([]) == "<empty>"


class TestExperimentDrivers:
    """Smoke tests: each driver runs end to end at tiny scale."""

    def test_fig2_driver(self):
        from repro.bench.experiments.fig2 import run_figure2

        result = run_figure2(workloads=("ssca2",), thread_counts=(2,),
                             seeds=(0,))
        assert len(result.rows) == 1
        assert result.average_pss_improvement == \
            result.rows[0].pss_improvement

    def test_fig3_driver_structure(self):
        from repro.jit.polybench import KERNELS
        from repro.jit.runner import run_polybench_suite

        subset = {"gemm": KERNELS["gemm"], "mvt": KERNELS["mvt"]}
        suite = run_polybench_suite(5, kernels=subset)
        assert len(suite.comparisons) == 2
        assert suite.iterations == 5

    def test_fig5_driver(self):
        from repro.bench.experiments.fig5 import run_figure5

        result = run_figure5(scale=0.02)
        assert len(result.comparisons) == 4
        names = {c.benchmark for c in result.comparisons}
        assert names == {"aiohttp", "djangocms", "flaskblogging",
                         "gunicorn"}

    def test_fig6_driver(self):
        from repro.bench.experiments.fig6 import run_figure6

        result = run_figure6(workers=(12,), pss_runs=1,
                             duration_ns=30_000_000.0)
        assert len(result.columns) == 1
        assert len(result.columns[0].pss_run_improvements) == 1

    def test_latency_driver(self):
        from repro.bench.experiments.latency import run_latency

        result = run_latency(calls=200)
        assert result.simulated_speedup > 16
        assert result.wall_vdso_ns > 0

    def test_drivers_have_mains(self):
        from repro.bench import experiments

        for module in (experiments.fig2, experiments.fig3,
                       experiments.fig4, experiments.fig5,
                       experiments.fig6, experiments.latency):
            assert callable(module.main)
