"""Tests for the ASCII figure rendering and the CLI."""

import pytest

from repro.bench.figures import BAR_WIDTH, bar_chart, grouped_bar_chart


class TestBarChart:
    def test_longest_value_gets_full_width(self):
        text = bar_chart(["a", "b"], [1.0, 0.5])
        bars = [line.split()[-1] for line in text.splitlines()]
        assert bars[0] == "+" * BAR_WIDTH
        assert bars[1] == "+" * (BAR_WIDTH // 2)

    def test_negative_values_use_minus_bars(self):
        text = bar_chart(["x"], [-0.4])
        assert "-" * 5 in text
        assert "+" not in text.split()[-1]

    def test_zero_series(self):
        text = bar_chart(["x"], [0.0])
        assert "x" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "<empty>"

    def test_custom_format(self):
        text = bar_chart(["a"], [3.0], fmt=lambda v: f"{v:.0f}ms")
        assert "3ms" in text


class TestGroupedBarChart:
    def test_rows_per_group_and_series(self):
        text = grouped_bar_chart(["g1", "g2"],
                                 {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert "g1 a" in text and "g2 b" in text


class TestCli:
    def test_models_command(self, capsys):
        from repro.__main__ import main

        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "perceptron" in out

    def test_unknown_command_lists_experiments(self, capsys):
        from repro.__main__ import main

        assert main(["figure99"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'figure99'" in err
        for name in ("fig2", "fig6", "latency"):
            assert name in err

    def test_no_command_lists_experiments(self, capsys):
        from repro.__main__ import main

        assert main([]) == 2
        out = capsys.readouterr().out
        assert "experiments:" in out
        assert "Figure 2" in out
        assert "--trace" in out

    def test_observability_flags_accepted(self, capsys, tmp_path):
        from repro.__main__ import main

        trace = tmp_path / "t.json"
        assert main(["latency", "--trace", str(trace),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert trace.exists()
        assert "metrics snapshot" in out

    def test_experiment_registry_covers_all_figures(self):
        from repro.__main__ import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "latency",
            "tenants", "serve",
        }
