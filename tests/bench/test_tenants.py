"""The tenants experiment: determinism and shard-scaling report shape."""

from repro.bench.experiments import tenants
from repro.bench.experiments.tenants import run_shard_count, run_tenants
from repro.obs.trace import Tracer


class TestDeterminism:
    def test_same_seed_renders_byte_identical_reports(self):
        first = run_tenants(seed=7, quick=True).render()
        second = run_tenants(seed=7, quick=True).render()
        assert first == second

    def test_tracing_does_not_perturb_the_report(self):
        plain = run_tenants(seed=7, quick=True).render()
        traced = run_tenants(seed=7, quick=True, tracer=Tracer()).render()
        assert traced == plain

    def test_different_seeds_differ(self):
        assert run_tenants(seed=0, quick=True).render() \
            != run_tenants(seed=1, quick=True).render()


class TestShardScalingReport:
    def test_four_shard_run_reports_per_shard_load(self):
        result = run_shard_count(4, seed=0, quick=True)
        assert result.num_shards == 4
        summaries = result.shard_summaries
        assert [s["shard"] for s in summaries] == [0, 1, 2, 3]
        assert sum(s["domains"] for s in summaries) >= 4
        assert sum(s["predictions"] for s in summaries) > 0
        # The vDSO percentile columns come from the always-attached
        # internal metrics registry.
        assert any(
            "vdso_read_ns" in s["latency_percentiles"] for s in summaries
        )

    def test_every_tenant_appears_with_its_quota(self):
        result = run_shard_count(4, seed=0, quick=True)
        tenants_seen = {who.program for who, _u, _q in result.usage_rows}
        assert tenants_seen == {
            "htm-elision", "jit-tuner", "mm-reclaim", "scavenger"
        }

    def test_scavenger_is_quota_limited_not_retried(self):
        result = run_shard_count(1, seed=0, quick=True)
        stats = result.scavenger_stats
        over = tenants.SCAVENGER_ATTEMPTS - tenants.SCAVENGER_BUDGET
        assert stats.quota_rejections == over
        assert stats.fallback_predictions == over
        assert stats.retries == 0

    def test_report_contains_all_tables(self):
        result = run_tenants(seed=0, quick=True)
        text = result.render()
        for heading in ("== 1 shard ==", "== 4 shards ==", "scavenger",
                        "tenant", "shard"):
            assert heading in text
