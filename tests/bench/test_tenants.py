"""The tenants experiment: determinism and shard-scaling report shape."""

import pytest

from repro.bench.experiments import tenants
from repro.bench.experiments.tenants import (
    parse_reshard_schedule,
    run_chaos,
    run_shard_count,
    run_tenants,
)
from repro.obs.trace import Tracer


class TestDeterminism:
    def test_same_seed_renders_byte_identical_reports(self):
        first = run_tenants(seed=7, quick=True).render()
        second = run_tenants(seed=7, quick=True).render()
        assert first == second

    def test_tracing_does_not_perturb_the_report(self):
        plain = run_tenants(seed=7, quick=True).render()
        traced = run_tenants(seed=7, quick=True, tracer=Tracer()).render()
        assert traced == plain

    def test_different_seeds_differ(self):
        assert run_tenants(seed=0, quick=True).render() \
            != run_tenants(seed=1, quick=True).render()


class TestShardScalingReport:
    def test_four_shard_run_reports_per_shard_load(self):
        result = run_shard_count(4, seed=0, quick=True)
        assert result.num_shards == 4
        summaries = result.shard_summaries
        assert [s["shard"] for s in summaries] == [0, 1, 2, 3]
        assert sum(s["domains"] for s in summaries) >= 4
        assert sum(s["predictions"] for s in summaries) > 0
        # The vDSO percentile columns come from the always-attached
        # internal metrics registry.
        assert any(
            "vdso_read_ns" in s["latency_percentiles"] for s in summaries
        )

    def test_every_tenant_appears_with_its_quota(self):
        result = run_shard_count(4, seed=0, quick=True)
        tenants_seen = {who.program for who, _u, _q in result.usage_rows}
        assert tenants_seen == {
            "htm-elision", "jit-tuner", "mm-reclaim", "scavenger"
        }

    def test_scavenger_is_quota_limited_not_retried(self):
        result = run_shard_count(1, seed=0, quick=True)
        stats = result.scavenger_stats
        over = tenants.SCAVENGER_ATTEMPTS - tenants.SCAVENGER_BUDGET
        assert stats.quota_rejections == over
        assert stats.fallback_predictions == over
        assert stats.retries == 0

    def test_report_contains_all_tables(self):
        result = run_tenants(seed=0, quick=True)
        text = result.render()
        for heading in ("== 1 shard ==", "== 4 shards ==", "scavenger",
                        "tenant", "shard"):
            assert heading in text


SCHEDULE = parse_reshard_schedule("6:4,14:3")


class TestReshardSchedule:
    def test_parses_pairs(self):
        assert SCHEDULE == {6: 4, 14: 3}
        assert parse_reshard_schedule("") == {}

    def test_rejects_malformed_specs(self):
        for bad in ("6", "6:4:2", "x:4", "6:x", "-1:4", "6:0"):
            with pytest.raises(SystemExit):
                parse_reshard_schedule(bad)


class TestChaosDeterminism:
    def test_same_seed_is_byte_identical(self):
        first, service_a = run_chaos(
            seed=42, replicas=2, reshard_schedule=dict(SCHEDULE)
        )
        second, service_b = run_chaos(
            seed=42, replicas=2, reshard_schedule=dict(SCHEDULE)
        )
        assert first.render() == second.render()
        assert first.snapshot(service_a) == second.snapshot(service_b)

    def test_tracing_does_not_perturb_the_outcome(self):
        plain, _ = run_chaos(seed=5, replicas=1)
        traced, _ = run_chaos(seed=5, replicas=1, tracer=Tracer())
        assert traced.render() == plain.render()

    def test_different_seeds_differ(self):
        first, _ = run_chaos(seed=0, replicas=2,
                             reshard_schedule=dict(SCHEDULE))
        second, _ = run_chaos(seed=1, replicas=2,
                              reshard_schedule=dict(SCHEDULE))
        assert first.render() != second.render()


class TestChaosInvariant:
    def test_reference_schedule_meets_the_headline_invariant(self):
        """The CI chaos gate in miniature: seed 42, two live reshards
        (2 -> 4 -> 3) under injected crashes, zero updates lost outside
        the documented replication window."""
        result, service = run_chaos(
            seed=42, replicas=2, reshard_schedule=dict(SCHEDULE)
        )
        assert result.ok
        assert result.violations == []
        assert result.crashes >= 3
        assert result.promotions >= 1
        assert result.reshards_completed == 2
        assert result.final_num_shards == 3
        assert service.num_shards == 3
        assert result.migrated_slots > 0
        assert result.failover_predictions > 0
        assert result.updates_delivered > 0
        # Losses happen - but only inside the documented replication
        # window (post-sync deliveries destroyed by a crash).
        assert result.window_lost > 0

    def test_no_faults_means_no_losses(self):
        result, _ = run_chaos(seed=9, replicas=1, crash_rate=0.0)
        assert result.ok
        assert result.crashes == 0
        assert result.window_lost == 0
        assert result.downtime_lost == 0
        assert result.failover_predictions == 0

    def test_render_and_snapshot_shape(self):
        result, service = run_chaos(
            seed=42, replicas=2, reshard_schedule=dict(SCHEDULE)
        )
        text = result.render()
        for needle in ("Chaos schedule", "reshard schedule: "
                       "round 6 -> 4 shards, round 14 -> 3 shards",
                       "shard crashes", "updates lost to crash window",
                       "ledger replay: OK"):
            assert needle in text
        snapshot = result.snapshot(service)
        assert snapshot["ok"] is True
        assert snapshot["final_num_shards"] == 3
        assert set(snapshot["domains"]) == set(service.domain_names())
        for entry in snapshot["domains"].values():
            assert {"state", "generation", "predictions", "updates",
                    "failover_predictions"} <= set(entry)
