"""Tests for the JIT parameter table (paper Table 1)."""

import pytest

from repro.jit.params import (
    DEFAULT_LADDER_INDEX,
    DEFAULTS,
    JitParams,
    LADDER,
    MULTIPLIERS,
    TRACE_LIMIT_CAP,
    scaled,
    with_param,
)


class TestTable1Defaults:
    """The paper's Table 1, asserted verbatim."""

    def test_default_values(self):
        params = JitParams()
        assert params.decay == 40
        assert params.function_threshold == 1619
        assert params.loop_longevity == 1000
        assert params.threshold == 1039
        assert params.trace_eagerness == 200
        assert params.trace_limit == 6000

    def test_defaults_table_complete(self):
        assert set(DEFAULTS) == {
            "decay", "function_threshold", "loop_longevity",
            "threshold", "trace_eagerness", "trace_limit",
        }

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            JitParams(threshold=0)


class TestScaling:
    def test_multipliers_match_section_4_3(self):
        assert MULTIPLIERS == (0.25, 0.5, 1.0, 2.0, 4.0)

    def test_unit_multiplier_is_default(self):
        assert scaled(1.0) == JitParams()

    def test_trace_limit_4x_capped_at_16000(self):
        # "trace_limit of 4X ... is set to 16000 instead of 24000
        # because of a range limit."
        assert scaled(4.0).trace_limit == TRACE_LIMIT_CAP == 16_000

    def test_aggressive_lowers_thresholds(self):
        aggressive = scaled(4.0)
        default = JitParams()
        assert aggressive.threshold < default.threshold
        assert aggressive.function_threshold < default.function_threshold
        assert aggressive.trace_eagerness < default.trace_eagerness

    def test_aggressive_raises_limits(self):
        aggressive = scaled(4.0)
        default = JitParams()
        assert aggressive.trace_limit > default.trace_limit
        assert aggressive.loop_longevity > default.loop_longevity

    def test_conservative_mirrors(self):
        conservative = scaled(0.25)
        default = JitParams()
        assert conservative.threshold > default.threshold
        assert conservative.trace_limit < default.trace_limit

    def test_unknown_multiplier_rejected(self):
        with pytest.raises(ValueError):
            scaled(3.0)


class TestLadder:
    def test_ladder_has_five_rungs(self):
        assert len(LADDER) == 5

    def test_default_index_points_at_default(self):
        assert LADDER[DEFAULT_LADDER_INDEX] == JitParams()

    def test_ladder_monotone_in_threshold(self):
        thresholds = [p.threshold for p in LADDER]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_ladder_monotone_in_trace_limit(self):
        limits = [p.trace_limit for p in LADDER]
        assert limits == sorted(limits)


class TestWithParam:
    def test_override_single_field(self):
        params = with_param(JitParams(), threshold=500)
        assert params.threshold == 500
        assert params.trace_limit == 6000
