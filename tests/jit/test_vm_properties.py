"""Property-based tests for the mini-VM and tracing JIT."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jit.interp import VM
from repro.jit.params import JitParams, LADDER, scaled, with_param
from repro.jit.program import Block, Guard, Loop, Program


def nests(max_depth=3):
    """Strategy generating random (but bounded) loop-nest programs."""
    leaf = st.builds(
        Loop,
        loop_id=st.sampled_from([f"L{i}" for i in range(6)]),
        trips=st.integers(1, 20),
        body_ops=st.integers(1, 80),
        guards=st.lists(
            st.builds(Guard, every=st.integers(2, 9),
                      side_ops=st.integers(0, 30)),
            max_size=1,
        ).map(tuple),
    )

    def wrap(children):
        return st.builds(
            Loop,
            loop_id=st.sampled_from([f"P{i}" for i in range(6)]),
            trips=st.integers(1, 8),
            body_ops=st.integers(1, 20),
            children=st.tuples(children),
        )

    return st.recursive(leaf, wrap, max_leaves=max_depth)


def program_from(nodes):
    return Program("prop", tuple(nodes), setup_ops=10)


class TestVmProperties:
    @settings(max_examples=40, deadline=None)
    @given(nests(), st.integers(1, 8))
    def test_time_is_positive_and_deterministic(self, loop, iterations):
        program = program_from([loop])
        a = VM(JitParams())
        b = VM(JitParams())
        times_a = [a.run_program(program) for _ in range(iterations)]
        times_b = [b.run_program(program) for _ in range(iterations)]
        assert times_a == times_b
        assert all(t > 0 for t in times_a)

    @settings(max_examples=30, deadline=None)
    @given(nests())
    def test_instructions_independent_of_params(self, loop):
        """Parameters change *time*, never the work performed."""
        program = program_from([loop])
        counts = []
        for params in (scaled(0.25), JitParams(), scaled(4.0)):
            vm = VM(params)
            for _ in range(4):
                vm.run_program(program)
            counts.append(vm.counters.instructions)
        assert counts[0] == counts[1] == counts[2]

    @settings(max_examples=30, deadline=None)
    @given(nests())
    def test_steady_state_not_slower_than_interp_only(self, loop):
        """A JIT that compiles must not end up slower at steady state
        than never compiling (costs are front-loaded)."""
        program = program_from([loop])
        jit = VM(JitParams())
        nojit = VM(with_param(JitParams(), threshold=10**9))

        def event_counts(vm):
            s = vm.jit.stats
            return (s.loops_compiled, s.functions_compiled,
                    s.trace_aborts, s.bridges_compiled, s.loops_freed,
                    s.cache_evictions, s.compiles_declined)

        # Warm up until steady state: a long stretch of runs with no
        # compile/abort/free/evict event means the front-loaded costs
        # are behind us.  (A fixed warmup count is not enough - slow
        # counters cross the hotness threshold hundreds of runs in.)
        stable, counts = 0, event_counts(jit)
        for _ in range(2000):
            jit.run_program(program)
            nojit.run_program(program)
            fresh = event_counts(jit)
            stable = stable + 1 if fresh == counts else 0
            counts = fresh
            if stable >= 250:
                break
        steady_jit = jit.run_program(program)
        steady_nojit = nojit.run_program(program)
        assert steady_jit <= steady_nojit * 1.01

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, len(LADDER) - 1), nests())
    def test_every_ladder_rung_runs(self, index, loop):
        vm = VM(LADDER[index])
        program = program_from([loop])
        for _ in range(3):
            assert vm.run_program(program) > 0

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 500), min_size=1, max_size=5))
    def test_blocks_cost_linear(self, ops_list):
        vm = VM(JitParams())
        program = Program(
            "blocks", tuple(Block(ops) for ops in ops_list), 0
        )
        elapsed = vm.run_program(program)
        expected = sum(ops_list) * vm.costs.interp_ns_per_op
        assert elapsed == expected
