"""Tests for the tracing-JIT state machine and the mini-VM."""

import pytest

from repro.jit.interp import VM
from repro.jit.params import JitParams, with_param
from repro.jit.program import (
    Block,
    Call,
    Function,
    Guard,
    Loop,
    LoopNestBuilder,
    Program,
)
from repro.jit.tracing import CostModel, TracingJit


def leaf(loop_id="L", trips=10, body_ops=20, guards=()):
    return Loop(loop_id=loop_id, trips=trips, body_ops=body_ops,
                guards=guards)


def prog(*nodes, name="p"):
    return Program(name=name, body=tuple(nodes), setup_ops=0)


class TestTraceOps:
    def test_leaf_trace_is_body(self):
        assert leaf(body_ops=33).trace_ops() == 33

    def test_nested_trace_unrolls_children(self):
        inner = leaf("i", trips=10, body_ops=5)
        outer = Loop("o", trips=4, body_ops=2, children=(inner,))
        assert outer.trace_ops() == 2 + 10 * 5

    def test_call_inlined_into_trace(self):
        f = Function("f", body_ops=7)
        loop = Loop("l", trips=3, body_ops=2, children=(Call(f),))
        assert loop.trace_ops() == 9

    def test_builder_produces_expected_structure(self):
        program = (LoopNestBuilder("k")
                   .nest("main", (4, 5, 6), body_ops=10)
                   .build())
        loops = program.loops()
        assert len(loops) == 3
        assert [loop.trips for loop in loops] == [4, 5, 6]


class TestHotnessThreshold:
    def test_loop_compiles_after_threshold(self):
        # threshold 49 < 5 bumps of 10 even after the slight decay
        vm = VM(with_param(JitParams(), threshold=49, decay=1))
        loop = leaf(trips=10)
        program = prog(loop)
        for _ in range(4):  # counter ~40 < 49
            vm.run_program(program)
        assert not vm.jit.loop_state("L").compiled
        vm.run_program(program)  # counter ~50 -> hot
        assert vm.jit.loop_state("L").compiled

    def test_lower_threshold_compiles_sooner(self):
        eager = VM(with_param(JitParams(), threshold=10))
        eager.run_program(prog(leaf(trips=10)))
        assert eager.jit.loop_state("L").compiled

    def test_compiled_runs_faster_steady_state(self):
        slow = VM(with_param(JitParams(), threshold=10**9))  # never hot
        fast = VM(with_param(JitParams(), threshold=1))
        program = prog(leaf(trips=50, body_ops=40))
        fast.run_program(program)  # warmup/compile
        t_fast = fast.run_program(program)
        t_slow = slow.run_program(program)
        assert t_fast < t_slow / 5


class TestTraceLimit:
    def test_oversized_trace_aborts(self):
        vm = VM(with_param(JitParams(), threshold=1, trace_limit=100))
        vm.run_program(prog(leaf(body_ops=200)))
        assert vm.jit.stats.trace_aborts == 1
        assert not vm.jit.loop_state("L").compiled

    def test_blacklisted_after_max_aborts(self):
        vm = VM(with_param(JitParams(), threshold=1, trace_limit=100))
        program = prog(leaf(body_ops=200))
        for _ in range(5):
            vm.run_program(program)
        state = vm.jit.loop_state("L")
        assert state.blacklisted
        assert vm.jit.stats.trace_aborts == vm.jit.costs.max_trace_aborts

    def test_raised_limit_allows_compilation(self):
        vm = VM(with_param(JitParams(), threshold=1, trace_limit=300))
        vm.run_program(prog(leaf(body_ops=200)))
        assert vm.jit.loop_state("L").compiled

    def test_outer_loop_of_deep_nest_exceeds_limit(self):
        program = (LoopNestBuilder("k", setup_ops=0)
                   .nest("main", (4, 100, 50), body_ops=30)
                   .build())
        outer, mid, inner = program.loops()
        params = JitParams()
        assert inner.trace_ops() <= params.trace_limit
        assert outer.trace_ops() > params.trace_limit


class TestGuardsAndBridges:
    def test_guard_failures_counted(self):
        vm = VM(with_param(JitParams(), threshold=1))
        loop = leaf(trips=30, guards=(Guard(every=10, side_ops=5),))
        program = prog(loop)
        vm.run_program(program)  # compile
        vm.run_program(program)
        assert vm.jit.stats.guard_failures >= 3

    def test_bridge_compiled_after_eagerness(self):
        vm = VM(with_param(JitParams(), threshold=1, trace_eagerness=5))
        loop = leaf(trips=100, guards=(Guard(every=10, side_ops=5),))
        program = prog(loop)
        vm.run_program(program)
        assert vm.jit.stats.bridges_compiled == 1

    def test_bridged_failures_are_cheaper(self):
        eager = VM(with_param(JitParams(), threshold=1,
                              trace_eagerness=1))
        lazy = VM(with_param(JitParams(), threshold=1,
                             trace_eagerness=10**6))
        loop = leaf(trips=100, guards=(Guard(every=4, side_ops=30),))
        program = prog(loop)
        eager.run_program(program)
        lazy.run_program(program)
        t_eager = sum(eager.run_program(program) for _ in range(5))
        t_lazy = sum(lazy.run_program(program) for _ in range(5))
        assert t_eager < t_lazy


class TestFunctionThreshold:
    def test_function_compiles_at_threshold(self):
        vm = VM(with_param(JitParams(), function_threshold=3))
        f = Function("f", body_ops=50)
        program = prog(Call(f))
        for _ in range(2):
            vm.run_program(program)
        assert not vm.jit.function_state("f").compiled
        vm.run_program(program)
        assert vm.jit.function_state("f").compiled
        assert vm.jit.stats.functions_compiled == 1


class TestDecay:
    def test_counters_decay_between_uses(self):
        vm = VM(with_param(JitParams(), threshold=10**9, decay=100))
        rare = prog(leaf("rare", trips=10), name="rare")
        busy = prog(leaf("busy", trips=10), name="busy")
        vm.run_program(rare)
        counter_before = vm.jit.loop_state("rare").counter
        for _ in range(300):
            vm.run_program(busy)
        vm.run_program(rare)
        # The bump added 10, but decay removed more than that.
        assert vm.jit.loop_state("rare").counter < counter_before + 10

    def test_zero_elapsed_no_decay(self):
        jit = TracingJit(JitParams())
        state = jit.loop_state("x")
        state.counter = 100.0
        jit._apply_decay(state)
        assert state.counter == 100.0


class TestLongevity:
    def test_unused_compiled_loop_freed(self):
        vm = VM(with_param(JitParams(), threshold=1, loop_longevity=1))
        target = prog(leaf("target", trips=10), name="t")
        vm.run_program(target)
        assert vm.jit.loop_state("target").compiled
        filler = prog(leaf("filler", trips=10), name="f")
        for _ in range(50):
            vm.run_program(filler)
        assert not vm.jit.loop_state("target").compiled
        assert vm.jit.stats.loops_freed >= 1

    def test_long_longevity_keeps_loop(self):
        vm = VM(with_param(JitParams(), threshold=1,
                           loop_longevity=10**6))
        target = prog(leaf("target", trips=10), name="t")
        vm.run_program(target)
        filler = prog(leaf("filler", trips=10), name="f")
        for _ in range(50):
            vm.run_program(filler)
        assert vm.jit.loop_state("target").compiled


class TestCodeCache:
    def test_cache_evicts_lru(self):
        costs = CostModel(code_cache_ops=100)
        vm = VM(with_param(JitParams(), threshold=1), costs)
        a = prog(leaf("a", body_ops=60), name="a")
        b = prog(leaf("b", body_ops=60), name="b")
        vm.run_program(a)
        vm.run_program(b)  # evicts a
        assert vm.jit.stats.cache_evictions == 1
        assert not vm.jit.loop_state("a").compiled
        assert vm.jit.loop_state("b").compiled


class TestCounters:
    def test_papi_counters_accumulate(self):
        vm = VM()
        vm.run_program(prog(Block(1000)))
        window = vm.counters.snapshot_and_reset()
        assert window.instructions == 1000
        assert window.l1d_hits + window.l1d_misses == 1000
        assert window.elapsed_ns > 0
        assert vm.counters.instructions == 0

    def test_compiled_code_misses_less(self):
        from repro.jit.counters import PapiCounters
        interp = PapiCounters()
        interp.record_ops(10_000, compiled=False)
        compiled = PapiCounters()
        compiled.record_ops(10_000, compiled=True)
        assert compiled.l1d_misses < interp.l1d_misses

    def test_feature_vector_is_rounded(self):
        from repro.jit.counters import PapiCounters
        c = PapiCounters(instructions=1234, l1d_hits=5000, l1d_misses=9,
                         elapsed_ns=1_999_000)
        features = c.feature_vector()
        assert features[0] == 1000
        assert features[2] == 2000  # 1999 us -> 2000


class TestValidation:
    def test_loop_rejects_zero_trips(self):
        with pytest.raises(ValueError):
            Loop("x", trips=0, body_ops=1)

    def test_guard_rejects_every_below_two(self):
        with pytest.raises(ValueError):
            Guard(every=1)

    def test_builder_rejects_empty_nest(self):
        with pytest.raises(ValueError):
            LoopNestBuilder("x").nest("t", (), body_ops=1)
