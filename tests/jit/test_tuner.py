"""Tests for the PSS JIT tuner, PolyBench suite, and macro workloads."""

import pytest

from repro.core import PredictionService
from repro.jit.macro import MACROBENCHMARKS, MacroWorkload, aiohttp
from repro.jit.params import DEFAULT_LADDER_INDEX, LADDER
from repro.jit.polybench import KERNELS, build_kernel
from repro.jit.runner import (
    run_macro_benchmark,
    run_polybench_kernel,
)
from repro.jit.tuner import BaselineRunner, PSSTuner


class TestPolybenchSuite:
    def test_thirty_kernels(self):
        assert len(KERNELS) == 30

    def test_paper_kernel_names_present(self):
        for name in ("gemm", "2mm", "3mm", "atax", "adi", "nussinov",
                     "seidel_2d", "gramschmidt", "floyd_warshall",
                     "durbin"):
            assert name in KERNELS

    def test_build_kernel_fresh_instances(self):
        a = build_kernel("gemm")
        b = build_kernel("gemm")
        assert a == b  # frozen dataclasses compare structurally
        assert a is not b

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            build_kernel("fizzbuzz")

    def test_all_kernels_have_loops(self):
        for name in KERNELS:
            program = build_kernel(name)
            assert program.loops(), name


class TestBaselineRunner:
    def test_produces_report(self):
        report = BaselineRunner().run(build_kernel("gemm"), 5)
        assert len(report.iterations) == 5
        assert report.total_ns > 0
        assert report.policy == "baseline"

    def test_first_iteration_slowest(self):
        """Warmup: compilation makes iteration 0 the most expensive."""
        report = BaselineRunner().run(build_kernel("gemm"), 10)
        durations = [r.duration_ns for r in report.iterations]
        assert durations[0] == max(durations)

    def test_cumulative_series_monotone(self):
        report = BaselineRunner().run(build_kernel("mvt"), 10)
        series = report.series_seconds()
        assert series == sorted(series)


class TestPSSTuner:
    def test_runs_and_reports(self):
        tuner = PSSTuner()
        report = tuner.run(build_kernel("gemm"), 10)
        assert len(report.iterations) == 10
        assert report.policy == "pss-vdso"

    def test_ladder_stays_in_range(self):
        tuner = PSSTuner()
        report = tuner.run(build_kernel("atax"), 30)
        assert all(
            0 <= r.ladder_index < len(LADDER)
            for r in report.iterations
        )

    def test_service_receives_traffic(self):
        service = PredictionService()
        tuner = PSSTuner(service=service)
        tuner.run(build_kernel("gemm"), 15)
        stats = service.domain("pypy-jit").stats
        assert stats.predictions >= 15

    def test_syscall_transport_charged(self):
        tuner = PSSTuner(transport="syscall")
        tuner.run(build_kernel("gemm"), 5)
        assert tuner.client.latency.syscalls > 0

    def test_syscall_overhead_visible_per_decision(self):
        quiet = PSSTuner(transport="vdso", consult_per_decision=True)
        noisy = PSSTuner(transport="syscall", consult_per_decision=True)
        wl_a, wl_b = aiohttp(), aiohttp()
        t_quiet = quiet.run(wl_a, 30).total_ns
        t_noisy = noisy.run(wl_b, 30).total_ns
        assert t_noisy > t_quiet


class TestKernelComparison:
    def test_improvement_sign_convention(self):
        comparison = run_polybench_kernel(
            lambda: build_kernel("gemver"), 20
        )
        # gemver is a reliable winner: PSS compiles its big outer loops.
        assert comparison.improvement > 0.1

    def test_fat_leaf_kernel_large_gain(self):
        comparison = run_polybench_kernel(
            lambda: build_kernel("gramschmidt"), 20
        )
        assert comparison.improvement > 0.5

    def test_losses_are_bounded(self):
        comparison = run_polybench_kernel(
            lambda: build_kernel("adi"), 20
        )
        assert comparison.improvement > -0.10


class TestMacroWorkloads:
    def test_four_benchmarks_with_paper_iterations(self):
        assert set(MACROBENCHMARKS) == {
            "aiohttp", "djangocms", "flaskblogging", "gunicorn",
        }
        assert MACROBENCHMARKS["aiohttp"][1] == 3000
        assert MACROBENCHMARKS["djangocms"][1] == 1800
        assert MACROBENCHMARKS["flaskblogging"][1] == 1800
        assert MACROBENCHMARKS["gunicorn"][1] == 3000

    def test_hot_set_rotates(self):
        workload = aiohttp()
        first = workload.hot_handler_ids(0)
        later = workload.hot_handler_ids(10)
        assert first != later
        assert len(first) == workload.config.hot_set

    def test_programs_share_loop_ids_across_iterations(self):
        workload = aiohttp()
        ids_a = {loop.loop_id for loop in workload(0).loops()}
        ids_b = {loop.loop_id for loop in workload(1).loops()}
        assert ids_a & ids_b  # rotation overlaps keep state relevant

    def test_cold_tail_functions_cycle(self):
        workload = aiohttp()
        program = workload(0)
        from repro.jit.program import Call
        tail_calls = [
            node for node in program.body
            if isinstance(node, Call) and "/tail" in node.function.name
        ]
        assert len(tail_calls) == workload.config.tail_calls

    def test_macro_comparison_smoke(self):
        comparison = run_macro_benchmark(aiohttp, 60, runs=1)
        assert comparison.benchmark == "aiohttp"
        assert len(comparison.baseline.iterations) == 60
        assert len(comparison.pss.iterations) == 60
        assert len(comparison.pss_syscall.iterations) == 60

    def test_macro_averaging_across_runs(self):
        comparison = run_macro_benchmark(aiohttp, 20, runs=2)
        assert len(comparison.baseline.iterations) == 20


class TestMacroConfigValidation:
    def test_workload_is_deterministic(self):
        a, b = aiohttp(), aiohttp()
        assert a(5) == b(5)

    def test_core_nest_built_when_configured(self):
        workload = aiohttp()
        ids = {loop.loop_id for loop in workload(0).loops()}
        assert any("core" in loop_id for loop_id in ids)
