"""Tests for the lock-elision policies."""

from repro.core import PredictionService, PSSConfig
from repro.htm.elision import (
    FixedRetryElision,
    LockOnlyPolicy,
    ProfiledElision,
    PSSElision,
)
from repro.htm.locks import ElidableLock
from repro.htm.machine import HTMConfig, HTMMachine
from repro.htm.txn import TxAttemptShape
from repro.sim.engine import Engine
from repro.sim.process import spawn


def shape(reads=(), writes=(), duration=100.0, unsupported=False):
    return TxAttemptShape(frozenset(reads), frozenset(writes),
                          duration, unsupported)


def make_world(htm_config=None):
    engine = Engine()
    machine = HTMMachine(engine, htm_config)
    lock = ElidableLock(engine, machine)
    return engine, machine, lock


def run_sections(engine, policy, lock, jobs):
    """jobs: list of (thread_id, section_id, shape); returns outcomes."""
    outcomes = [None] * len(jobs)

    def body(i, tid, sid, shp):
        outcomes[i] = yield from policy.critical_section(
            tid, sid, lock, shp
        )

    for i, (tid, sid, shp) in enumerate(jobs):
        spawn(engine, body(i, tid, sid, shp))
    engine.run()
    return outcomes


class TestLockOnly:
    def test_never_uses_htm(self):
        engine, machine, lock = make_world()
        policy = LockOnlyPolicy(machine)
        outcomes = run_sections(engine, policy, lock,
                                [(0, 0, shape()), (1, 0, shape())])
        assert all(not o.used_htm for o in outcomes)
        assert machine.stats.begins == 0
        assert policy.stats.lock_paths == 2


class TestFixedRetry:
    def test_commits_on_clean_section(self):
        engine, machine, lock = make_world()
        policy = FixedRetryElision(machine)
        [outcome] = run_sections(engine, policy, lock,
                                 [(0, 0, shape(writes=[1]))])
        assert outcome.used_htm and not outcome.fell_back
        assert outcome.attempts == 1

    def test_falls_back_after_budget_exhausted(self):
        engine, machine, lock = make_world(HTMConfig(capacity_lines=2))
        policy = FixedRetryElision(machine, max_retries=3)
        [outcome] = run_sections(engine, policy, lock,
                                 [(0, 0, shape(reads=range(10)))])
        assert outcome.fell_back
        # Naive baseline retries even persistent aborts.
        assert outcome.attempts == 3
        assert machine.stats.aborts == 3


class TestProfiled:
    def test_plan_lock_only_never_speculates(self):
        engine, machine, lock = make_world()
        policy = ProfiledElision(machine, plan={0: (False, 0)})
        [outcome] = run_sections(engine, policy, lock, [(0, 0, shape())])
        assert not outcome.used_htm
        assert machine.stats.begins == 0

    def test_plan_breaks_on_persistent_abort(self):
        engine, machine, lock = make_world(HTMConfig(capacity_lines=2))
        policy = ProfiledElision(machine, plan={0: (True, 3)})
        [outcome] = run_sections(engine, policy, lock,
                                 [(0, 0, shape(reads=range(10)))])
        assert outcome.fell_back
        assert outcome.attempts == 1  # gave up after the capacity abort

    def test_unknown_section_uses_default(self):
        engine, machine, lock = make_world()
        policy = ProfiledElision(machine, plan={})
        [outcome] = run_sections(engine, policy, lock, [(0, 7, shape())])
        assert outcome.used_htm


class TestPSSElision:
    def make_policy(self, machine, **kwargs):
        service = PredictionService()
        client = service.connect(
            "hle", config=PSSConfig(num_features=2, weight_bits=6,
                                    training_margin=8),
            batch_size=1,
        )
        return PSSElision(machine, client, **kwargs), service

    def test_cold_start_tries_htm(self):
        engine, machine, lock = make_world()
        policy, _ = self.make_policy(machine)
        [outcome] = run_sections(engine, policy, lock,
                                 [(0, 0, shape(writes=[1]))])
        assert outcome.used_htm and not outcome.fell_back

    def test_learns_to_skip_hopeless_section(self):
        """Repeated capacity aborts must teach the predictor to skip."""
        engine, machine, lock = make_world(HTMConfig(capacity_lines=2))
        policy, _ = self.make_policy(machine)
        doomed = shape(reads=range(10))

        def body():
            for _ in range(40):
                yield from policy.critical_section(0, 0, lock, doomed)

        spawn(engine, body())
        engine.run()
        assert policy.stats.skipped_htm > 10

    def test_probing_recovers_after_conditions_improve(self):
        """After learning to skip, successful probes must re-enable HTM."""
        engine, machine, lock = make_world(HTMConfig(capacity_lines=64))
        policy, _ = self.make_policy(machine)
        doomed = shape(reads=range(100))  # capacity-busting
        clean = shape(writes=[1])

        def body():
            for _ in range(40):
                yield from policy.critical_section(0, 0, lock, doomed)
            for _ in range(60):
                yield from policy.critical_section(0, 0, lock, clean)

        spawn(engine, body())
        engine.run()
        # The tail of clean sections must include real HTM commits again.
        assert policy.stats.htm_commits > 20

    def test_updates_flow_to_service(self):
        engine, machine, lock = make_world()
        policy, service = self.make_policy(machine)
        run_sections(engine, policy, lock, [(0, 0, shape(writes=[1]))])
        assert service.domain("hle").stats.updates >= 1

    def test_per_thread_section_state_isolated(self):
        engine, machine, lock = make_world()
        policy, _ = self.make_policy(machine)
        s0 = policy._state(0, 0)
        s1 = policy._state(1, 0)
        s2 = policy._state(0, 1)
        assert s0 is not s1 and s0 is not s2
        assert policy._state(0, 0) is s0


class TestRunnerIntegration:
    def test_compare_policies_produces_row(self):
        from repro.htm import compare_policies
        from repro.htm.stamp import get_profile

        row = compare_policies(get_profile("ssca2"), threads=2,
                               seeds=(0,))
        assert row.workload == "ssca2"
        assert row.threads == 2
        assert row.vanilla_ns > 0

    def test_lock_elision_beats_locks_at_high_threads(self):
        """The headline direction: elision wins on a scalable workload."""
        from repro.htm import compare_policies
        from repro.htm.stamp import get_profile

        row = compare_policies(get_profile("vacation-low"), threads=16,
                               seeds=(0,))
        assert row.pss_improvement > 0.3
        assert row.htmbench_improvement > 0.3

    def test_labyrinth_shows_no_elision_benefit(self):
        from repro.htm import compare_policies
        from repro.htm.stamp import get_profile

        row = compare_policies(get_profile("labyrinth"), threads=8,
                               seeds=(0,))
        assert abs(row.pss_improvement) < 0.05
        assert abs(row.htmbench_improvement) < 0.05

    def test_effective_cores_model(self):
        from repro.htm.runner import effective_cores

        assert effective_cores(1) == 1
        assert effective_cores(8) == 8
        assert effective_cores(16) == 12
        assert effective_cores(32) == 12  # capped at 2 threads/core

    def test_build_profile_plan_demotes_hopeless_sections(self):
        from repro.htm import build_profile_plan
        from repro.htm.stamp import get_profile

        plan = build_profile_plan(get_profile("labyrinth"), threads=4,
                                  seed=0)
        assert all(use_htm is False for use_htm, _ in plan.values())
