"""Tests for the simulated HTM machine."""

from repro.htm.machine import HTMConfig, HTMMachine
from repro.htm.txn import AbortCode, TxAttemptShape
from repro.sim.engine import Engine
from repro.sim.process import spawn
from repro.sim.resources import SimMutex


def shape(reads=(), writes=(), duration=100.0, unsupported=False):
    return TxAttemptShape(
        read_lines=frozenset(reads),
        write_lines=frozenset(writes),
        duration_ns=duration,
        unsupported=unsupported,
    )


def run_txs(machine, engine, shapes, mutexes=None, starts=None):
    """Run each shape as its own process; returns the TxResults."""
    results = [None] * len(shapes)
    mutexes = mutexes or [None] * len(shapes)
    starts = starts or [0.0] * len(shapes)

    def body(i):
        if starts[i]:
            yield starts[i]
        results[i] = yield from machine.run_transaction(
            shapes[i], mutexes[i]
        )

    for i in range(len(shapes)):
        spawn(engine, body(i))
    engine.run()
    return results


class TestCommitPath:
    def test_single_transaction_commits(self):
        engine = Engine()
        machine = HTMMachine(engine)
        [result] = run_txs(machine, engine, [shape(writes=[1, 2])])
        assert result.committed
        assert machine.stats.commits == 1
        assert machine.stats.begins == 1

    def test_commit_duration_includes_costs(self):
        engine = Engine()
        config = HTMConfig(begin_cost_ns=10, commit_cost_ns=5)
        machine = HTMMachine(engine, config)
        [result] = run_txs(machine, engine, [shape(duration=100)])
        assert result.duration_ns == 115.0

    def test_disjoint_transactions_commit_concurrently(self):
        engine = Engine()
        machine = HTMMachine(engine)
        results = run_txs(machine, engine, [
            shape(writes=[1]), shape(writes=[2]), shape(writes=[3]),
        ])
        assert all(r.committed for r in results)
        # Concurrent, so total time ~ one transaction, not three.
        assert engine.now < 200


class TestCapacityAborts:
    def test_footprint_over_capacity_aborts(self):
        engine = Engine()
        config = HTMConfig(capacity_lines=4)
        machine = HTMMachine(engine, config)
        [result] = run_txs(machine, engine, [shape(reads=range(10))])
        assert not result.committed
        assert result.abort_code is AbortCode.CAPACITY

    def test_capacity_abort_burns_partial_work(self):
        engine = Engine()
        config = HTMConfig(capacity_lines=4, begin_cost_ns=0,
                           abort_cost_ns=50, capacity_abort_fraction=0.1)
        machine = HTMMachine(engine, config)
        [result] = run_txs(machine, engine,
                           [shape(reads=range(10), duration=1000)])
        assert result.duration_ns == 1000 * 0.1 + 50

    def test_footprint_counts_distinct_union(self):
        s = shape(reads=[1, 2, 3], writes=[2, 3, 4])
        assert s.footprint == 4


class TestUnsupportedAborts:
    def test_unsupported_instruction_aborts(self):
        engine = Engine()
        machine = HTMMachine(engine)
        [result] = run_txs(machine, engine, [shape(unsupported=True)])
        assert not result.committed
        assert result.abort_code is AbortCode.UNSUPPORTED


class TestConflicts:
    def test_write_write_conflict_aborts_loser(self):
        engine = Engine()
        machine = HTMMachine(engine)
        # Same line, overlapping in time; first to commit wins.
        results = run_txs(machine, engine, [
            shape(writes=[7], duration=100),
            shape(writes=[7], duration=300),
        ])
        assert results[0].committed
        assert not results[1].committed
        assert results[1].abort_code is AbortCode.CONFLICT

    def test_write_read_conflict(self):
        engine = Engine()
        machine = HTMMachine(engine)
        results = run_txs(machine, engine, [
            shape(writes=[7], duration=100),
            shape(reads=[7], duration=300),
        ])
        assert results[0].committed
        assert not results[1].committed

    def test_read_read_no_conflict(self):
        engine = Engine()
        machine = HTMMachine(engine)
        results = run_txs(machine, engine, [
            shape(reads=[7], duration=100),
            shape(reads=[7], duration=300),
        ])
        assert all(r.committed for r in results)

    def test_non_overlapping_times_no_conflict(self):
        engine = Engine()
        machine = HTMMachine(engine)
        results = run_txs(machine, engine, [
            shape(writes=[7], duration=50),
            shape(writes=[7], duration=50),
        ], starts=[0.0, 500.0])
        assert all(r.committed for r in results)


class TestLockSubscription:
    def test_lock_held_at_begin_aborts(self):
        engine = Engine()
        machine = HTMMachine(engine)
        mutex = SimMutex(engine)

        def holder():
            yield mutex.acquire()
            yield 1000
            mutex.release()

        spawn(engine, holder())
        [result] = run_txs(machine, engine, [shape(duration=100)],
                           mutexes=[mutex], starts=[50.0])
        assert not result.committed
        assert result.abort_code is AbortCode.EXPLICIT

    def test_lock_acquisition_aborts_subscribed_tx(self):
        engine = Engine()
        machine = HTMMachine(engine)
        mutex = SimMutex(engine)
        results = [None]

        def tx_body():
            results[0] = yield from machine.run_transaction(
                shape(duration=1000), mutex
            )

        def acquirer():
            yield 100  # let the transaction start first
            yield mutex.acquire()
            machine.notify_lock_acquired(mutex)
            mutex.release()

        spawn(engine, tx_body())
        spawn(engine, acquirer())
        engine.run()
        assert not results[0].committed
        assert results[0].abort_code is AbortCode.EXPLICIT


class TestLockedSectionConflicts:
    def test_tx_cannot_commit_into_locked_section_data(self):
        engine = Engine()
        machine = HTMMachine(engine)
        result_box = [None]

        def tx_body():
            result_box[0] = yield from machine.run_transaction(
                shape(writes=[42], duration=500), None
            )

        def locked_body():
            yield 50
            section = machine.begin_locked_section(
                shape(writes=[42], duration=1000)
            )
            yield 1000
            machine.end_locked_section(section)

        spawn(engine, tx_body())
        spawn(engine, locked_body())
        engine.run()
        # Either aborted at section begin (invalidation) or at commit.
        assert not result_box[0].committed

    def test_disjoint_data_coexists_with_locked_section(self):
        engine = Engine()
        machine = HTMMachine(engine)
        result_box = [None]

        def tx_body():
            result_box[0] = yield from machine.run_transaction(
                shape(writes=[1], duration=500), None
            )

        def locked_body():
            section = machine.begin_locked_section(
                shape(writes=[99], duration=1000)
            )
            yield 1000
            machine.end_locked_section(section)

        spawn(engine, tx_body())
        spawn(engine, locked_body())
        engine.run()
        assert result_box[0].committed

    def test_contention_stretch_grows_with_spinners(self):
        engine = Engine()
        machine = HTMMachine(engine)
        section = machine.begin_locked_section(shape(writes=[1]))
        base = machine.contention_stretch(0, section)
        stretched = machine.contention_stretch(5, section)
        assert base == 1.0
        assert stretched > base
        capped = machine.contention_stretch(1000, section)
        assert capped == machine.config.holder_interference_cap


class TestStats:
    def test_abort_codes_counted(self):
        engine = Engine()
        config = HTMConfig(capacity_lines=4)
        machine = HTMMachine(engine, config)
        run_txs(machine, engine, [
            shape(reads=range(10)),       # capacity
            shape(unsupported=True),      # unsupported
            shape(writes=[1]),            # commit
        ])
        assert machine.stats.aborts_by_code[AbortCode.CAPACITY] == 1
        assert machine.stats.aborts_by_code[AbortCode.UNSUPPORTED] == 1
        assert machine.stats.commits == 1
        assert machine.stats.commit_rate == 1 / 3
