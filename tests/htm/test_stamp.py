"""Tests for the STAMP-like workload suite (paper Table 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htm.stamp import (
    FIGURE2_ORDER,
    PROFILES,
    WorkloadInstance,
    get_profile,
)
from repro.htm.stamp.base import SECTION_REGION_STRIDE


class TestRegistry:
    def test_table2_benchmarks_present(self):
        # Paper Table 2 names (kmeans/vacation appear as low/high pairs).
        for name in ("intruder", "labyrinth", "yada", "ssca2", "genome"):
            assert name in PROFILES
        for base in ("vacation", "kmeans"):
            assert f"{base}-low" in PROFILES
            assert f"{base}-high" in PROFILES

    def test_figure2_order_has_nine_subfigures(self):
        assert len(FIGURE2_ORDER) == 9
        assert set(FIGURE2_ORDER) == set(PROFILES)

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError):
            get_profile("quicksort")

    def test_descriptions_match_paper_table2(self):
        assert PROFILES["intruder"].description == \
            "Network intrusion detection"
        assert PROFILES["labyrinth"].description == "Maze routing"
        assert PROFILES["yada"].description == "Delaunay mesh refinement"
        assert PROFILES["genome"].description == "Gene sequencing"


class TestWorkloadInstance:
    def test_deterministic_for_seed(self):
        p = get_profile("genome")
        a = WorkloadInstance(p, threads=4, seed=7)
        b = WorkloadInstance(p, threads=4, seed=7)
        for i in range(20):
            sa = a.sample_shape(0, a.pick_section(0), i)
            sb = b.sample_shape(0, b.pick_section(0), i)
            assert sa == sb

    def test_different_seeds_differ(self):
        p = get_profile("genome")
        a = WorkloadInstance(p, threads=4, seed=1)
        b = WorkloadInstance(p, threads=4, seed=2)
        shapes_a = [a.sample_shape(0, 0, i).duration_ns for i in range(10)]
        shapes_b = [b.sample_shape(0, 0, i).duration_ns for i in range(10)]
        assert shapes_a != shapes_b

    def test_strong_scaling_iterations(self):
        p = get_profile("ssca2")
        assert p.iterations_per_thread(1) == p.total_iterations
        assert p.iterations_per_thread(4) == p.total_iterations // 4

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            WorkloadInstance(get_profile("ssca2"), threads=0)

    def test_sections_use_disjoint_regions(self):
        p = get_profile("vacation-low")
        inst = WorkloadInstance(p, threads=1, seed=0)
        s0 = inst.sample_shape(0, 0, 0)
        s1 = inst.sample_shape(0, 1, 0)
        lines0 = s0.read_lines | s0.write_lines
        lines1 = s1.read_lines | s1.write_lines
        assert not lines0 & lines1
        assert all(line < SECTION_REGION_STRIDE for line in lines0)

    def test_labyrinth_footprints_bust_capacity(self):
        p = get_profile("labyrinth")
        inst = WorkloadInstance(p, threads=1, seed=0)
        shapes = [inst.sample_shape(0, 0, i) for i in range(30)]
        over = sum(1 for s in shapes if s.footprint > 512)
        assert over >= 27  # essentially always over HTM capacity

    def test_ssca2_footprints_are_tiny(self):
        p = get_profile("ssca2")
        inst = WorkloadInstance(p, threads=1, seed=0)
        shapes = [inst.sample_shape(0, 0, i) for i in range(30)]
        assert all(s.footprint < 32 for s in shapes)

    def test_yada_capacity_tail_is_bursty(self):
        p = get_profile("yada")
        inst = WorkloadInstance(p, threads=1, seed=0)
        big = [
            inst.sample_shape(0, 0, i).footprint > 512
            for i in range(1500)
        ]
        transitions = sum(
            1 for a, b in zip(big, big[1:]) if a != b
        )
        tail = sum(big)
        assert tail > 50  # the tail exists
        # Bursty: fewer transitions than tail entries means runs of
        # consecutive blowups (an iid process would flip nearly twice
        # per tail entry at this density).
        assert transitions < tail

    def test_phase_changes_span(self):
        p = get_profile("genome")
        hot = p.span_at(0.1, 0)
        cool = p.span_at(0.9, 0)
        assert hot < cool

    def test_section_heat_scales_span(self):
        p = get_profile("intruder")  # heat (1.0, 0.05, 1.0)
        assert p.span_at(0.9, 1) < p.span_at(0.9, 0)


class TestSectionSelection:
    def test_weights_bias_selection(self):
        p = get_profile("genome")  # weights (0.7, 0.2, 0.1)
        inst = WorkloadInstance(p, threads=1, seed=0)
        counts = [0] * p.sections
        for _ in range(2000):
            counts[inst.pick_section(0)] += 1
        assert counts[0] > counts[1] > counts[2]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000), st.integers(1, 16))
    def test_pick_section_in_range(self, seed, threads):
        p = get_profile("vacation-high")
        inst = WorkloadInstance(p, threads=threads, seed=seed)
        for tid in range(threads):
            assert 0 <= inst.pick_section(tid) < p.sections


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(0, 100))
def test_all_shapes_well_formed(name, seed):
    profile = PROFILES[name]
    inst = WorkloadInstance(profile, threads=2, seed=seed)
    for i in range(5):
        section = inst.pick_section(0)
        s = inst.sample_shape(0, section, i)
        assert s.duration_ns >= 30.0
        assert len(s.read_lines) >= 1
        assert len(s.write_lines) >= 1
        assert inst.non_tx_work(0) >= 10.0
