"""Tests for the access / sharing policy layer."""

import pytest

from repro.core.errors import PolicyError
from repro.core.policy import (
    ClientIdentity,
    DomainPolicy,
    SharingMode,
    open_policy,
    private_policy,
)

OWNER = ClientIdentity(uid=1000, program="appA")
OTHER = ClientIdentity(uid=1001, program="appB")


class TestOpenPolicy:
    def test_everyone_may_do_everything(self):
        p = open_policy()
        for who in (OWNER, OTHER, ClientIdentity.kernel()):
            assert p.may_predict(who)
            assert p.may_update(who)
            assert p.may_reset(who)


class TestPrivatePolicy:
    def test_owner_only(self):
        p = private_policy(OWNER)
        assert p.may_predict(OWNER)
        assert p.may_update(OWNER)
        assert p.may_reset(OWNER)
        assert not p.may_predict(OTHER)
        assert not p.may_update(OTHER)
        assert not p.may_reset(OTHER)

    def test_check_raises_policy_error(self):
        p = private_policy(OWNER)
        with pytest.raises(PolicyError):
            p.check_predict(OTHER, "d")
        with pytest.raises(PolicyError):
            p.check_update(OTHER, "d")
        with pytest.raises(PolicyError):
            p.check_reset(OTHER, "d")


class TestReadOnlySharing:
    def test_anyone_predicts_owner_updates(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.READ_ONLY)
        assert p.may_predict(OTHER)
        assert not p.may_update(OTHER)
        assert p.may_update(OWNER)
        assert not p.may_reset(OTHER)


class TestAllowLists:
    def test_uid_allow_list(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.SHARED,
                         allowed_uids=frozenset({1001}))
        assert p.may_update(OTHER)  # uid 1001 allowed
        stranger = ClientIdentity(uid=2000, program="appB")
        assert not p.may_update(stranger)

    def test_program_allow_list(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.SHARED,
                         allowed_programs=frozenset({"appB"}))
        assert p.may_predict(OTHER)
        stranger = ClientIdentity(uid=1001, program="appC")
        assert not p.may_predict(stranger)

    def test_both_lists_must_match(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.SHARED,
                         allowed_uids=frozenset({1001}),
                         allowed_programs=frozenset({"appB"}))
        assert p.may_update(OTHER)
        assert not p.may_update(ClientIdentity(uid=1001, program="appC"))
        assert not p.may_update(ClientIdentity(uid=9, program="appB"))

    def test_owner_bypasses_lists(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.SHARED,
                         allowed_uids=frozenset({42}))
        assert p.may_update(OWNER)

    def test_restricted_share_reset_is_owner_only(self):
        p = DomainPolicy(owner=OWNER, mode=SharingMode.SHARED,
                         allowed_uids=frozenset({1001}))
        assert not p.may_reset(OTHER)
        assert p.may_reset(OWNER)


class TestServiceIntegration:
    def test_service_enforces_policy_through_handles(self):
        from repro.core import PredictionService, PSSConfig

        service = PredictionService()
        service.create_domain(
            "private", config=PSSConfig(num_features=1),
            policy=private_policy(OWNER),
        )
        owner_client = service.connect("private", identity=OWNER)
        other_client = service.connect("private", identity=OTHER)
        assert owner_client.predict([1]) == 0
        with pytest.raises(PolicyError):
            other_client.predict([1])

    def test_policy_error_on_buffered_update_surfaces_at_flush(self):
        from repro.core import PredictionService, PSSConfig

        service = PredictionService()
        service.create_domain(
            "private", config=PSSConfig(num_features=1),
            policy=private_policy(OWNER),
        )
        other_client = service.connect(
            "private", identity=OTHER, batch_size=8
        )
        other_client.update([1], True)  # buffered, no check yet
        with pytest.raises(PolicyError):
            other_client.flush()
