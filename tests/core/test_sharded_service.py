"""The sharded kernel: routing, per-shard accounting, and checkpoints."""

import json

import pytest

from repro.core import (
    AdmissionController,
    ClientIdentity,
    ConfigError,
    PredictionService,
    PSSConfig,
    TenantQuota,
)
from repro.core.errors import DomainError
from repro.core.kernel import ShardedCheckpointManager, ShardRouter
from repro.core.kernel.checkpoint import shard_file_name
from repro.core.persistence import snapshot_service
from repro.obs import Tracer

CONFIG = PSSConfig(num_features=1)

NAMES = [f"domain-{i}" for i in range(16)]


def populate(service, names=NAMES, updates=0):
    for name in names:
        service.create_domain(name, config=CONFIG)
        for i in range(updates):
            service.update(name, [i], True)


class TestShardRouter:
    def test_rejects_nonpositive_shard_counts(self):
        for bad in (0, -1):
            with pytest.raises(ConfigError):
                ShardRouter(bad)

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert {router.shard_of(name) for name in NAMES} == {0}

    def test_placement_is_stable_and_in_range(self):
        router = ShardRouter(4)
        first = [router.shard_of(name) for name in NAMES]
        assert first == [ShardRouter(4).shard_of(name) for name in NAMES]
        assert all(0 <= shard < 4 for shard in first)
        # 16 names over 4 shards should not all collapse onto one.
        assert len(set(first)) > 1

    def test_partition_groups_by_owner(self):
        router = ShardRouter(4)
        placed = router.partition(NAMES)
        assert sorted(n for names in placed.values() for n in names) \
            == sorted(NAMES)
        for shard_id, names in placed.items():
            assert all(router.shard_of(n) == shard_id for n in names)


class TestShardedServiceTopology:
    def test_domains_land_on_their_routed_shard(self):
        service = PredictionService(num_shards=4)
        populate(service)
        for name in NAMES:
            domain = service.domain(name)
            assert domain.shard_id == service.shard_of(name)
            assert name in service.shard(domain.shard_id)
            assert domain.shard_label == str(domain.shard_id)

    def test_unknown_shard_raises(self):
        service = PredictionService(num_shards=2)
        with pytest.raises(DomainError):
            service.shard(2)

    def test_remove_domain_releases_admission_quota(self):
        admission = AdmissionController()
        tenant = ClientIdentity(uid=1, program="t")
        admission.set_quota(tenant, TenantQuota(max_domains=1))
        service = PredictionService(num_shards=4, admission=admission)
        service.handle("a", identity=tenant, config=CONFIG)
        service.remove_domain("a")
        assert admission.usage_for(tenant).domains == 0
        service.handle("b", identity=tenant, config=CONFIG)

    def test_shard_summaries_shape_and_totals(self):
        service = PredictionService(num_shards=4)
        populate(service, updates=2)
        for name in NAMES:
            service.predict(name, [1])
        summaries = service.shard_summaries()
        assert [s["shard"] for s in summaries] == [0, 1, 2, 3]
        assert sum(s["domains"] for s in summaries) == len(NAMES)
        assert sum(s["predictions"] for s in summaries) == len(NAMES)
        assert sum(s["updates"] for s in summaries) == 2 * len(NAMES)
        for summary in summaries:
            assert summary["domains"] == len(summary["domain_names"])

    def test_reports_carry_shard_ids(self):
        service = PredictionService(num_shards=4)
        populate(service)
        for report in service.reports():
            assert report.shard == service.shard_of(report.name)


class TestShardedCheckpoints:
    def trained_service(self, num_shards=4):
        service = PredictionService(num_shards=num_shards)
        populate(service, updates=3)
        return service

    def test_round_trip(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        assert (tmp_path / "manifest.json").exists()

        restored = PredictionService(num_shards=4)
        count = ShardedCheckpointManager(restored, tmp_path).recover()
        assert count == len([
            s for s in source.shard_summaries() if s["domains"]
        ])
        assert snapshot_service(restored)["domains"] \
            == snapshot_service(source)["domains"]

    def test_recover_from_empty_directory_is_cold_start(self, tmp_path):
        service = PredictionService(num_shards=4)
        manager = ShardedCheckpointManager(service, tmp_path)
        assert manager.recover() == 0
        assert service.domain_names() == ()

    def test_corrupt_shard_file_costs_only_that_shard(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        occupied = [s["shard"] for s in source.shard_summaries()
                    if s["domains"]]
        victim = occupied[0]
        path = tmp_path / shard_file_name(victim)
        path.write_text(path.read_text()[:-20] + "garbage")

        restored = PredictionService(num_shards=4)
        manager = ShardedCheckpointManager(restored, tmp_path)
        assert manager.recover() == len(occupied) - 1
        assert manager.corrupt_detected == 1
        assert manager.last_error
        lost = set(source.shard(victim).domain_names())
        assert set(restored.domain_names()) == set(NAMES) - lost

    def test_recovery_result_names_skipped_shards(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        occupied = [s["shard"] for s in source.shard_summaries()
                    if s["domains"]]
        victim = occupied[0]
        path = tmp_path / shard_file_name(victim)
        path.write_text(path.read_text()[:-20] + "garbage")

        restored = PredictionService(num_shards=4)
        result = ShardedCheckpointManager(restored, tmp_path).recover()
        # Still an int for existing callers...
        assert result == len(occupied) - 1
        assert result.restored == len(occupied) - 1
        # ...but the lost shard is named, never silently dropped.
        assert result.skipped == (shard_file_name(victim),)
        assert len(result.errors) == 1
        assert shard_file_name(victim) in result.errors[0] \
            or "checksum" in result.errors[0]

    def test_skipped_shard_emits_corrupt_trace(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        occupied = [s["shard"] for s in source.shard_summaries()
                    if s["domains"]]
        victim = occupied[0]
        (tmp_path / shard_file_name(victim)).unlink()

        tracer = Tracer()
        restored = PredictionService(num_shards=4, tracer=tracer)
        result = ShardedCheckpointManager(restored, tmp_path).recover()
        assert result.skipped == (shard_file_name(victim),)
        corrupt = [e for e in tracer.events()
                   if e.kind == "checkpoint.corrupt"]
        assert len(corrupt) == 1
        (event,) = corrupt
        assert event.shard == str(victim)
        assert event.detail["file"] == shard_file_name(victim)
        assert "missing" in event.detail["reason"]

    def test_clean_recovery_skips_nothing(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        restored = PredictionService(num_shards=4)
        result = ShardedCheckpointManager(restored, tmp_path).recover()
        assert result.skipped == ()
        assert result.errors == ()

    def test_dirty_signature_gates_rewrites(self, tmp_path):
        source = self.trained_service()
        manager = ShardedCheckpointManager(source, tmp_path)
        first = manager.checkpoint()
        assert first == len([
            s for s in source.shard_summaries() if s["domains"]
        ])
        # Nothing moved: every shard is clean.
        assert manager.checkpoint() == 0
        # Touch one domain: only its shard is rewritten.
        source.update(NAMES[0], [9], False)
        assert manager.checkpoint() == 1

    def test_tick_checkpoints_on_interval_boundaries(self, tmp_path):
        source = self.trained_service()
        manager = ShardedCheckpointManager(source, tmp_path, interval=10)
        assert not manager.tick(9)
        assert manager.tick(1)
        assert manager.checkpoints_written > 0

    def test_recovery_across_shard_count_change(self, tmp_path):
        source = self.trained_service(num_shards=8)
        ShardedCheckpointManager(source, tmp_path).checkpoint()

        restored = PredictionService(num_shards=2)
        ShardedCheckpointManager(restored, tmp_path).recover()
        assert snapshot_service(restored)["domains"] \
            == snapshot_service(source)["domains"]
        # Restored domains sit where the 2-shard router says, not where
        # the 8-shard manifest wrote them.
        for name in NAMES:
            assert restored.domain(name).shard_id == restored.shard_of(name)

    def test_manifest_records_topology(self, tmp_path):
        source = self.trained_service()
        ShardedCheckpointManager(source, tmp_path).checkpoint()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["version"] == 1
        assert manifest["num_shards"] == 4
        for shard_id, entry in manifest["shards"].items():
            assert entry["domains"] == len(source.shard(int(shard_id)))
