"""Property tests: the layered kernel is bit-identical to the monolith.

The multi-layer refactor moved the service into
:mod:`repro.core.kernel` (shards + router + admission) behind the
:class:`~repro.core.service.PredictionService` facade.  Two identities
pin that nothing behavioural moved with it:

* **single-shard vs the frozen monolith** - a 1-shard facade with no
  admission controller must match :class:`tests.core.reference_impl
  .ReferenceService` exactly: every score, every stats counter, every
  generation value, and the full ``snapshot_service`` dict, across
  randomized workloads over several domains (direct calls and
  policy-checked handles alike).
* **N shards vs 1 shard** - sharding is pure placement: the same
  workload on a multi-shard service produces the same scores, stats,
  generations, and snapshot as on a single shard, and per-shard
  checkpoint sets restore to the same state a whole-service snapshot
  would.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionService, PSSConfig
from repro.core.kernel import ShardedCheckpointManager
from repro.core.persistence import snapshot_service

from tests.core.reference_impl import ReferenceService

DOMAIN_NAMES = ("alpha", "beta", "gamma", "delta")


def configs():
    return st.builds(
        PSSConfig,
        num_features=st.integers(1, 3),
        entries_per_feature=st.sampled_from([2, 16]),
        weight_bits=st.integers(2, 8),
        threshold=st.integers(-2, 2),
        training_margin=st.one_of(st.none(), st.integers(0, 10)),
        seed=st.integers(0, 3),
    )


def workloads():
    """A config, a vector pool sized to it, and a multi-domain op stream."""
    return configs().flatmap(
        lambda config: st.tuples(
            st.just(config),
            st.lists(
                st.lists(
                    st.integers(-1_000_000, 1_000_000),
                    min_size=config.num_features,
                    max_size=config.num_features,
                ).map(tuple),
                min_size=1, max_size=5, unique=True,
            ),
            st.lists(
                st.tuples(
                    st.sampled_from(
                        ["predict", "update", "reset", "reset_all",
                         "handle_predict"]
                    ),
                    st.sampled_from(DOMAIN_NAMES),
                    st.integers(0, 4),
                    st.booleans(),
                ),
                max_size=80,
            ),
        )
    )


def drive(service, config, pool, stream, collect):
    """Apply one op stream to any service-shaped object."""
    for name in DOMAIN_NAMES:
        service.create_domain(name, config=config)
    for op, name, vec_index, flag in stream:
        vector = pool[vec_index % len(pool)]
        if op == "predict":
            collect.append(service.predict(name, list(vector)))
        elif op == "handle_predict":
            collect.append(service.handle(name).predict(list(vector)))
        elif op == "update":
            service.update(name, list(vector), flag)
        else:
            service.reset(name, list(vector),
                          reset_all=(op == "reset_all"))


def state_of(service):
    """Everything the identity compares, as one structure."""
    return {
        "names": service.domain_names(),
        "generations": {
            name: service.domain(name).generation
            for name in service.domain_names()
        },
        "stats": {
            name: service.domain(name).stats
            for name in service.domain_names()
        },
        "snapshot": snapshot_service(service),
    }


class TestSingleShardMatchesMonolith:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_scores_stats_generations_snapshots_identical(self, data):
        config, pool, stream = data.draw(workloads())
        kernel = PredictionService()
        reference = ReferenceService()
        kernel_scores, reference_scores = [], []
        drive(kernel, config, pool, stream, kernel_scores)
        drive(reference, config, pool, stream, reference_scores)
        assert kernel_scores == reference_scores
        assert state_of(kernel) == state_of(reference)

    def test_single_shard_reports_carry_no_shard(self):
        service = PredictionService()
        service.create_domain("only", config=PSSConfig(num_features=1))
        service.predict("only", [1])
        (report,) = service.reports()
        assert report.shard == 0
        assert service.domain("only").shard_label == ""


class TestShardingIsPurePlacement:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), num_shards=st.sampled_from([2, 3, 8]))
    def test_n_shards_identical_to_one(self, data, num_shards):
        config, pool, stream = data.draw(workloads())
        single = PredictionService(num_shards=1)
        sharded = PredictionService(num_shards=num_shards)
        single_scores, sharded_scores = [], []
        drive(single, config, pool, stream, single_scores)
        drive(sharded, config, pool, stream, sharded_scores)
        assert single_scores == sharded_scores
        assert state_of(single) == state_of(sharded)
        # Placement is consistent with the router and covers every domain.
        for name in sharded.domain_names():
            domain = sharded.domain(name)
            assert domain.shard_id == sharded.shard_of(name)
            assert name in sharded.shard(domain.shard_id).domain_names()

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_per_shard_checkpoints_restore_full_state(self, data):
        config, pool, stream = data.draw(workloads())
        source = PredictionService(num_shards=4)
        drive(source, config, pool, stream, [])
        # tmp_path is function-scoped, not example-scoped; make our own.
        with tempfile.TemporaryDirectory() as root:
            ShardedCheckpointManager(source, Path(root)).checkpoint()
            restored = PredictionService(num_shards=4)
            ShardedCheckpointManager(restored, Path(root)).recover()
        assert snapshot_service(restored)["domains"] \
            == snapshot_service(source)["domains"]
