"""Tests for feature preprocessing: rounding, ratios, history registers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.features import (
    FeatureVector,
    HistoryRegister,
    reciprocal_ratio,
    round_to_msf,
    rounded_vector,
)


class TestRoundToMsf:
    def test_paper_examples(self):
        # Straight from Section 4.3 of the paper.
        assert round_to_msf(1234) == 1000
        assert round_to_msf(6276) == 6000
        assert round_to_msf(1999) == 2000

    def test_small_values_unchanged(self):
        for v in range(10):
            assert round_to_msf(v) == v

    def test_zero(self):
        assert round_to_msf(0) == 0

    def test_negative_symmetric(self):
        assert round_to_msf(-1234) == -1000
        assert round_to_msf(-1999) == -2000

    def test_two_figures(self):
        assert round_to_msf(1234, figures=2) == 1200
        assert round_to_msf(1999, figures=2) == 2000

    def test_rejects_bad_figures(self):
        with pytest.raises(ValueError):
            round_to_msf(10, figures=0)

    @given(st.integers(-10**9, 10**9))
    def test_idempotent(self, value):
        once = round_to_msf(value)
        assert round_to_msf(once) == once

    @given(st.integers(-10**9, 10**9))
    def test_within_half_order_of_magnitude(self, value):
        rounded = round_to_msf(value)
        assert abs(rounded - value) <= max(1, abs(value))
        # Sign is preserved.
        if value != 0:
            assert (rounded > 0) == (value > 0) or rounded == 0

    @given(st.integers(1, 10**9))
    def test_coarsening_reduces_cardinality(self, value):
        # Rounded values have at most 1 significant digit.
        rounded = round_to_msf(value)
        text = str(rounded).rstrip("0")
        assert len(text) <= 1 or rounded == value


class TestReciprocalRatio:
    def test_paper_floor_semantics(self):
        # floor(nr_scanned / nr_reclaimed): 100 scanned, 8 reclaimed -> 12
        assert reciprocal_ratio(100, 8) == 12

    def test_zero_denominator_saturates(self):
        assert reciprocal_ratio(100, 0) == 1_000_000

    def test_saturation_cap(self):
        assert reciprocal_ratio(10**9, 1, saturate_at=1000) == 1000

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            reciprocal_ratio(-1, 2)
        with pytest.raises(ValueError):
            reciprocal_ratio(1, -2)

    @given(st.integers(0, 10**6), st.integers(1, 10**6))
    def test_equals_floor_division(self, num, den):
        assert reciprocal_ratio(num, den) == min(num // den, 1_000_000)


class TestHistoryRegister:
    def test_push_shifts_left(self):
        h = HistoryRegister(bits=4)
        h.push(True)
        h.push(False)
        h.push(True)
        assert h.value == 0b101

    def test_window_drops_old_bits(self):
        h = HistoryRegister(bits=2)
        h.push(True)
        h.push(True)
        h.push(False)
        assert h.value == 0b10

    def test_success_count(self):
        h = HistoryRegister(bits=8)
        for outcome in [True, False, True, True]:
            h.push(outcome)
        assert h.success_count() == 3

    def test_clear(self):
        h = HistoryRegister(bits=8, initial=0xFF)
        h.clear()
        assert h.value == 0

    def test_initial_masked(self):
        h = HistoryRegister(bits=4, initial=0xFF)
        assert h.value == 0xF

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            HistoryRegister(bits=0)

    @given(st.lists(st.booleans(), max_size=100),
           st.integers(min_value=1, max_value=32))
    def test_value_always_fits_in_bits(self, outcomes, bits):
        h = HistoryRegister(bits=bits)
        for outcome in outcomes:
            h.push(outcome)
        assert 0 <= h.value < 2**bits

    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    def test_value_encodes_exact_window(self, outcomes):
        h = HistoryRegister(bits=8)
        for outcome in outcomes:
            h.push(outcome)
        expected = 0
        for outcome in outcomes:
            expected = (expected << 1) | int(outcome)
        assert h.value == expected


class TestFeatureVector:
    def test_builder_combines_kinds(self):
        vec = (FeatureVector()
               .raw(0b1011)
               .rounded(1234)
               .ratio(100, 8)
               .build())
        assert vec == [0b1011, 1000, 12]

    def test_extend_rounded(self):
        vec = FeatureVector().extend_rounded([1234, 6276]).build()
        assert vec == [1000, 6000]

    def test_len(self):
        fv = FeatureVector().raw(1).raw(2)
        assert len(fv) == 2

    def test_build_returns_copy(self):
        fv = FeatureVector().raw(1)
        first = fv.build()
        first.append(99)
        assert fv.build() == [1]


class TestRoundedVector:
    def test_applies_to_all(self):
        assert rounded_vector([1234, 6276, 1999]) == [1000, 6000, 2000]

    def test_empty(self):
        assert rounded_vector([]) == []


class TestCategoricalEmbedding:
    """Paper Section 3.2.2: categorical parameters via projection."""

    def test_deterministic_and_distinct(self):
        from repro.core.features import embed_category
        assert embed_category("GET") == embed_category("GET")
        assert embed_category("GET") != embed_category("POST")

    def test_non_string_values_accepted(self):
        from repro.core.features import embed_category
        assert embed_category(("a", 1)) == embed_category(("a", 1))

    def test_bucket_range(self):
        from repro.core.features import embed_category
        for value in ("x", "y", 123, None):
            assert 0 <= embed_category(value, buckets=97) < 97

    def test_rejects_tiny_bucket_count(self):
        import pytest
        from repro.core.features import embed_category
        with pytest.raises(ValueError):
            embed_category("x", buckets=1)

    def test_hierarchy_one_feature_per_level(self):
        from repro.core.features import embed_hierarchy
        features = embed_hierarchy("api", "v2", "users")
        assert len(features) == 3

    def test_hierarchy_shares_prefixes(self):
        from repro.core.features import embed_hierarchy
        a = embed_hierarchy("api", "v2", "users")
        b = embed_hierarchy("api", "v2", "orders")
        assert a[0] == b[0] and a[1] == b[1] and a[2] != b[2]

    def test_embedded_categories_are_learnable(self):
        from repro.core import PredictionService, PSSConfig
        from repro.core.features import embed_category
        service = PredictionService()
        service.create_domain("routes", config=PSSConfig(num_features=1))
        for _ in range(20):
            service.update("routes", [embed_category("GET")], True)
            service.update("routes", [embed_category("POST")], False)
        assert service.predict("routes", [embed_category("GET")]) > 0
        assert service.predict("routes", [embed_category("POST")]) < 0
