"""Tests for crash recovery via the checkpoint manager."""

import json

import pytest

from repro.core import (
    CheckpointManager,
    FaultInjector,
    FaultPlan,
    PredictionService,
    PSSConfig,
    snapshot_service,
)
from repro.core.errors import PersistenceError


def workload_step(service, i):
    service.update("hle", [i % 8, 1], i % 2 == 0)
    service.update("jit", [i % 4, 2, 3], i % 3 == 0)
    service.predict("hle", [i % 8, 1])


def fresh_service():
    service = PredictionService()
    service.create_domain("hle", config=PSSConfig(num_features=2))
    service.create_domain("jit", config=PSSConfig(num_features=3))
    return service


class TestCheckpointManager:
    def test_interval_validation(self):
        with pytest.raises(PersistenceError):
            CheckpointManager(fresh_service(), "x.json", interval=0)

    def test_ticks_trigger_periodic_checkpoints(self, tmp_path):
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(fresh_service(), path, interval=10)
        fired = [manager.tick() for _ in range(35)]
        assert sum(fired) == 3
        assert manager.checkpoints_written == 3
        assert path.exists()

    def test_bulk_ticks_do_not_skip_checkpoints(self, tmp_path):
        manager = CheckpointManager(fresh_service(),
                                    tmp_path / "ckpt.json", interval=10)
        assert manager.tick(count=25)
        assert manager.checkpoints_written == 1

    def test_recover_from_missing_file_is_clean_cold_start(self, tmp_path):
        manager = CheckpointManager(fresh_service(),
                                    tmp_path / "none.json")
        assert manager.recover() is False
        assert manager.corrupt_detected == 0
        assert manager.last_error is None

    def test_kill_and_recreate_mid_workload(self, tmp_path):
        path = tmp_path / "ckpt.json"
        service = fresh_service()
        manager = CheckpointManager(service, path, interval=50)
        for i in range(340):  # dies mid-interval: last checkpoint at 300
            workload_step(service, i)
            manager.tick()
        # The simulated crash: the service object is gone; a new one
        # recovers from the last on-disk checkpoint.
        at_checkpoint = snapshot_service(service)  # for reference only
        del service

        reborn = PredictionService()
        recovered = CheckpointManager(reborn, path, interval=50)
        assert recovered.recover() is True
        assert reborn.domain_names() == ("hle", "jit")
        # Weights and stats match the checkpoint exactly... not the 40
        # post-checkpoint steps - those died with the process.
        restored = snapshot_service(reborn)
        assert restored != at_checkpoint
        assert restored == json.loads(path.read_text())
        # ...and the reborn service keeps learning from where it was.
        for i in range(10):
            workload_step(reborn, i)

    def test_recover_preserves_every_domain_weight(self, tmp_path):
        path = tmp_path / "ckpt.json"
        service = fresh_service()
        for i in range(200):
            workload_step(service, i)
        CheckpointManager(service, path).checkpoint()

        reborn = PredictionService()
        assert CheckpointManager(reborn, path).recover()
        for i in range(16):
            features = [i % 8, 1]
            assert reborn.predict("hle", features) == \
                service.predict("hle", features)
            features = [i % 4, 2, 3]
            assert reborn.predict("jit", features) == \
                service.predict("jit", features)

    def test_corrupt_checkpoint_detected_not_restored(self, tmp_path):
        path = tmp_path / "ckpt.json"
        service = fresh_service()
        for i in range(100):
            workload_step(service, i)
        CheckpointManager(service, path).checkpoint()
        # Bit-flip the payload on disk.
        text = path.read_text()
        middle = len(text) // 2
        flipped = chr(ord(text[middle]) ^ 0x2)
        path.write_text(text[:middle] + flipped + text[middle + 1:])

        reborn = PredictionService()
        reborn.create_domain("prior", config=PSSConfig(num_features=1))
        before = snapshot_service(reborn)
        manager = CheckpointManager(reborn, path)
        assert manager.recover() is False
        assert manager.corrupt_detected == 1
        assert manager.last_error is not None
        # The service is untouched: it starts from scratch instead of
        # trusting corrupt weights.
        assert snapshot_service(reborn) == before

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        manager = CheckpointManager(fresh_service(), path, interval=1)
        manager.checkpoint()
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []


class TestInjectedCorruption:
    def test_injector_corrupts_checkpoints_deterministically(self, tmp_path):
        def run(seed):
            path = tmp_path / f"ckpt-{seed}.json"
            service = fresh_service()
            for i in range(100):
                workload_step(service, i)
            injector = FaultInjector(
                FaultPlan(seed=seed, corruption_rate=1.0)
            )
            CheckpointManager(service, path,
                              injector=injector).checkpoint()
            return path.read_text()

        assert run(seed=0) == run(seed=0)

    def test_corrupted_write_is_caught_on_recover(self, tmp_path):
        path = tmp_path / "ckpt.json"
        service = fresh_service()
        for i in range(100):
            workload_step(service, i)
        injector = FaultInjector(FaultPlan(seed=1, corruption_rate=1.0))
        manager = CheckpointManager(service, path, injector=injector)
        manager.checkpoint()
        assert injector.stats.corrupted_snapshots == 1

        reborn = PredictionService()
        recovered = CheckpointManager(reborn, path)
        # The flip may hit JSON structure or payload; either way the
        # restore must refuse rather than adopt damaged weights.
        assert recovered.recover() is False
        assert recovered.corrupt_detected == 1
        assert reborn.domain_names() == ()
