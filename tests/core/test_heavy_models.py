"""Tests for the accuracy-tier models (KNN, boosted stumps, tiny MLP)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PSSConfig
from repro.core.errors import FeatureError
from repro.core.heavy_models import (
    BoostedStumpsModel,
    KnnModel,
    TinyMlpModel,
)
from repro.core.models import create_model

CFG = PSSConfig(num_features=2, entries_per_feature=128)
HEAVY = [KnnModel, BoostedStumpsModel, TinyMlpModel]


@pytest.mark.parametrize("cls", HEAVY)
class TestHeavyContract:
    def test_learns_feature_dependent_rule(self, cls):
        m = cls(CFG)
        for _ in range(60):
            m.update([5, 6], True)
            m.update([50, 60], False)
        assert m.predict([5, 6]) > 0
        assert m.predict([50, 60]) < 0

    def test_rejects_wrong_length(self, cls):
        m = cls(CFG)
        with pytest.raises(FeatureError):
            m.predict([1])
        with pytest.raises(FeatureError):
            m.update([1, 2, 3], True)

    def test_state_round_trip(self, cls):
        m = cls(CFG)
        for v in range(30):
            m.update([v, v * 2], v % 2 == 0)
        clone = cls(CFG)
        clone.load_state(m.to_state())
        for v in range(30):
            assert clone.predict([v, v * 2]) == m.predict([v, v * 2])

    def test_full_reset(self, cls):
        m = cls(CFG)
        for _ in range(40):
            m.update([9, 9], False)
        m.reset([9, 9], reset_all=True)
        # Back to the optimistic/neutral default.
        assert m.predict([9, 9]) >= -5

    def test_registered_in_service(self, cls):
        name = {
            KnnModel: "knn",
            BoostedStumpsModel: "boosted-stumps",
            TinyMlpModel: "tiny-mlp",
        }[cls]
        model = create_model(name, CFG)
        assert isinstance(model, cls)


class TestKnnSpecifics:
    def test_reservoir_bounded(self):
        m = KnnModel(CFG)
        for i in range(KnnModel.CAPACITY + 100):
            m.update([i, i], True)
        assert len(m._examples) == KnnModel.CAPACITY

    def test_nearest_neighbour_generalizes(self):
        m = KnnModel(CFG)
        for _ in range(10):
            m.update([10, 10], True)
            m.update([1000, 1000], False)
        # Unseen points near each cluster inherit its label.
        assert m.predict([12, 11]) > 0
        assert m.predict([900, 1100]) < 0

    def test_selective_reset_removes_matching_points(self):
        m = KnnModel(CFG)
        for _ in range(5):
            m.update([7, 7], False)
        m.update([100, 100], True)
        m.reset([7, 7], reset_all=False)
        assert m.predict([7, 7]) > 0  # only the positive example remains


class TestMlpSpecifics:
    def test_generalizes_a_band_rule_to_unseen_values(self):
        """A band rule needs two thresholds (non-linear in the raw
        feature), and generalization to *unseen* values is exactly what
        the hashed perceptron cannot do - each unseen value hashes to an
        untrained weight."""
        m = TinyMlpModel(PSSConfig(num_features=1))

        def truth(v):
            return 20 <= v < 45

        for _ in range(300):
            for v in range(0, 80, 2):  # train on even values only
                m.update([v], truth(v))
        errors = sum(
            1 for v in range(1, 80, 2)
            if (m.predict([v]) >= 0) != truth(v)
        )
        assert errors <= 2

    def test_deterministic_init_from_seed(self):
        a = TinyMlpModel(CFG)
        b = TinyMlpModel(CFG)
        assert a.to_state() == b.to_state()


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(["knn", "boosted-stumps", "tiny-mlp"]),
       st.lists(st.tuples(st.integers(-500, 500), st.booleans()),
                max_size=40))
def test_heavy_models_accept_arbitrary_streams(name, stream):
    model = create_model(name, PSSConfig(num_features=1))
    for value, direction in stream:
        model.update([value], direction)
        assert isinstance(model.predict([value]), int)
