"""Tests for the alternative predictor backends (Section 3.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alt_models import (
    ConstantModel,
    DecisionStumpEnsemble,
    MajorityModel,
    NaiveBayesModel,
    OnlineLinearModel,
)
from repro.core.config import PSSConfig
from repro.core.errors import FeatureError
from repro.core.models import create_model, registered_models

CFG2 = PSSConfig(num_features=2, entries_per_feature=128)

ADAPTIVE_MODELS = [
    OnlineLinearModel,
    NaiveBayesModel,
    DecisionStumpEnsemble,
    MajorityModel,
]


@pytest.mark.parametrize("cls", ADAPTIVE_MODELS)
class TestSharedContract:
    def test_learns_positive_direction(self, cls):
        m = cls(CFG2)
        for _ in range(40):
            m.update([10, 20], True)
        assert m.predict([10, 20]) > 0

    def test_learns_negative_direction(self, cls):
        m = cls(CFG2)
        for _ in range(40):
            m.update([10, 20], False)
        assert m.predict([10, 20]) < 0

    def test_full_reset_restores_neutrality(self, cls):
        m = cls(CFG2)
        for _ in range(40):
            m.update([10, 20], False)
        m.reset([10, 20], reset_all=True)
        assert m.predict([10, 20]) >= 0  # back to the optimistic default

    def test_rejects_wrong_length(self, cls):
        m = cls(CFG2)
        with pytest.raises(FeatureError):
            m.predict([1])
        with pytest.raises(FeatureError):
            m.update([1, 2, 3], True)

    def test_state_round_trip(self, cls):
        m = cls(CFG2)
        for v in range(25):
            m.update([v, v * 2], v % 2 == 0)
        clone = cls(CFG2)
        clone.load_state(m.to_state())
        for v in range(25):
            assert clone.predict([v, v * 2]) == m.predict([v, v * 2])

    def test_never_returns_zero(self, cls):
        """Scores must carry a decision; zero would be ambiguous for
        callers comparing against a zero threshold with strict sign."""
        m = cls(CFG2)
        assert m.predict([1, 2]) != 0 or m.predict([1, 2]) >= 0


class TestConstantModel:
    def test_always_true(self):
        m = ConstantModel.always_true(CFG2)
        assert m.predict([0, 0]) > 0
        m.update([0, 0], False)  # feedback is ignored
        assert m.predict([0, 0]) > 0

    def test_always_false(self):
        m = ConstantModel.always_false(CFG2)
        assert m.predict([0, 0]) < 0

    def test_state_round_trip(self):
        m = ConstantModel.always_false(CFG2)
        clone = ConstantModel.always_true(CFG2)
        clone.load_state(m.to_state())
        assert clone.predict([0, 0]) < 0


class TestMajorityModel:
    def test_ignores_features(self):
        m = MajorityModel(CFG2)
        for _ in range(10):
            m.update([1, 1], True)
        assert m.predict([999, 999]) > 0

    def test_counter_saturates(self):
        m = MajorityModel(PSSConfig(num_features=1, weight_bits=4))
        for _ in range(100):
            m.update([1], True)
        assert m.predict([1]) == 7  # max of 4-bit signed


class TestOnlineLinearModel:
    def test_generalizes_monotonic_rule(self):
        """Trained 'big first feature means False', it extrapolates to
        unseen big values - the distinguishing power vs the perceptron."""
        m = OnlineLinearModel(CFG2)
        for _ in range(300):
            m.update([100, 0], False)
            m.update([1, 0], True)
        assert m.predict([120, 0]) < 0  # unseen, larger value
        assert m.predict([2, 0]) > 0    # unseen, small value

    def test_selective_reset_is_noop(self):
        m = OnlineLinearModel(CFG2)
        for _ in range(10):
            m.update([5, 5], True)
        before = m.predict([5, 5])
        m.reset([5, 5], reset_all=False)
        assert m.predict([5, 5]) == before


class TestNaiveBayes:
    def test_feature_conditional_rule(self):
        m = NaiveBayesModel(CFG2)
        for _ in range(30):
            m.update([1, 0], True)
            m.update([2, 0], False)
        assert m.predict([1, 0]) > 0
        assert m.predict([2, 0]) < 0

    def test_selective_reset_clears_buckets(self):
        m = NaiveBayesModel(CFG2)
        for _ in range(30):
            m.update([1, 0], False)
            m.update([2, 0], True)
        m.reset([1, 0], reset_all=False)
        # Bucket evidence gone; only priors remain, and the positive
        # updates for [2, 0] dominate the prior.
        assert m.predict([1, 0]) >= 0


class TestDecisionStumps:
    def test_threshold_tracks_running_mean(self):
        m = DecisionStumpEnsemble(PSSConfig(num_features=1))
        for _ in range(10):
            m.update([100], True)
        assert m._thresholds[0] == pytest.approx(100.0)

    def test_splits_on_threshold(self):
        m = DecisionStumpEnsemble(PSSConfig(num_features=1))
        # Alternate so the running-mean threshold sits around 50.
        for _ in range(100):
            m.update([100], False)
            m.update([1], True)
        assert m.predict([200]) < 0
        assert m.predict([0]) > 0


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_models()
        for expected in ("perceptron", "linear", "naive-bayes",
                         "stumps", "majority"):
            assert expected in names

    def test_create_model_returns_working_instance(self):
        m = create_model("linear", CFG2)
        m.update([1, 2], True)
        assert isinstance(m.predict([1, 2]), int)

    def test_register_rejects_duplicates(self):
        from repro.core.errors import ModelError
        from repro.core.models import register_model
        with pytest.raises(ModelError):
            register_model("perceptron", OnlineLinearModel)


@settings(max_examples=25, deadline=None)
@given(st.sampled_from(["linear", "naive-bayes", "stumps", "majority"]),
       st.lists(st.tuples(st.integers(-100, 100), st.booleans()),
                max_size=60))
def test_models_accept_arbitrary_streams(model_name, stream):
    """No model may crash or return a non-int on any feedback stream."""
    m = create_model(model_name, PSSConfig(num_features=1,
                                           entries_per_feature=64))
    for value, direction in stream:
        m.update([value], direction)
        assert isinstance(m.predict([value]), int)
