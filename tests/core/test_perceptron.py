"""Unit and property tests for the hashed perceptron predictor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PSSConfig
from repro.core.perceptron import HashedPerceptron


def make(num_features=2, **kwargs):
    kwargs.setdefault("entries_per_feature", 256)
    return HashedPerceptron(PSSConfig(num_features=num_features, **kwargs))


class TestPredictBasics:
    def test_initial_prediction_is_zero_and_true(self):
        p = make()
        assert p.predict([1, 2]) == 0
        assert p.decide([1, 2]) is True  # 0 >= threshold 0

    def test_threshold_shifts_decision(self):
        p = make(threshold=5)
        assert p.decide([1, 2]) is False

    def test_score_equals_predict(self):
        p = make()
        p.update([3, 4], True)
        assert p.predict([3, 4]) == p.score([3, 4])


class TestLearning:
    def test_rewards_push_positive(self):
        p = make()
        for _ in range(10):
            p.update([1, 2], True)
        assert p.predict([1, 2]) > 0

    def test_penalties_push_negative(self):
        p = make()
        for _ in range(10):
            p.update([1, 2], False)
        assert p.predict([1, 2]) < 0

    def test_learns_feature_dependent_rule(self):
        """Features where direction differs must get opposing predictions."""
        p = make()
        for _ in range(30):
            p.update([100, 1], True)
            p.update([200, 2], False)
        assert p.decide([100, 1]) is True
        assert p.decide([200, 2]) is False

    def test_margin_stops_training_when_confident(self):
        p = make(training_margin=3)
        for _ in range(100):
            p.update([1, 2], True)
        confident = p.predict([1, 2])
        p.update([1, 2], True)  # should be a no-op: agreed and confident
        assert p.predict([1, 2]) == confident

    def test_recovers_from_lock_in(self):
        """The paper's anti-trap property: after heavy penalties, a modest
        run of rewards flips the decision back (weights cannot run away)."""
        p = make(weight_bits=6, training_margin=10)
        for _ in range(500):
            p.update([1, 2], False)
        assert p.decide([1, 2]) is False
        flips_after = None
        for i in range(200):
            p.update([1, 2], True)
            if p.decide([1, 2]):
                flips_after = i + 1
                break
        assert flips_after is not None
        # Margin + saturation bound recovery: generous upper bound.
        assert flips_after <= 60


class TestReset:
    def test_selective_reset_keeps_other_entries(self):
        p = make()
        for _ in range(20):
            p.update([1, 2], True)
            p.update([50, 60], False)
        p.reset([1, 2], reset_all=False)
        assert p.predict([50, 60]) < 0

    def test_full_reset_zeroes_all(self):
        p = make()
        for _ in range(20):
            p.update([1, 2], True)
        p.reset([1, 2], reset_all=True)
        assert p.predict([1, 2]) == 0
        assert p.predict([50, 60]) == 0


class TestStateRoundTrip:
    def test_round_trip(self):
        p = make()
        for v in range(30):
            p.update([v, v + 1], v % 3 != 0)
        state = p.to_state()
        q = make()
        q.load_state(state)
        for v in range(30):
            assert q.predict([v, v + 1]) == p.predict([v, v + 1])


class TestPerceptronProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers(-1000, 1000),
                  st.booleans()),
        max_size=100,
    ))
    def test_score_bounded_by_saturation(self, stream):
        p = make(weight_bits=5)  # weights in -16..15
        for a, b, direction in stream:
            p.update([a, b], direction)
        for a, b, _ in stream:
            assert -3 * 16 <= p.predict([a, b]) <= 3 * 15

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-10_000, 10_000), st.integers(-10_000, 10_000))
    def test_learnability_of_constant_direction(self, a, b):
        """Any single feature vector trained one way must converge."""
        p = make()
        for _ in range(25):
            p.update([a, b], True)
        assert p.decide([a, b]) is True
        for _ in range(60):
            p.update([a, b], False)
        assert p.decide([a, b]) is False

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_seed_changes_internal_layout_not_behaviour(self, seed):
        """Domain seed must not affect learnability, only hashing."""
        p = HashedPerceptron(PSSConfig(
            num_features=2, entries_per_feature=256, seed=seed
        ))
        for _ in range(20):
            p.update([11, 22], True)
        assert p.decide([11, 22]) is True


class TestConfigValidation:
    def test_rejects_zero_features(self):
        from repro.core.errors import ConfigError
        with pytest.raises(ConfigError):
            PSSConfig(num_features=0)

    def test_rejects_too_many_features(self):
        from repro.core.errors import ConfigError
        with pytest.raises(ConfigError):
            PSSConfig(num_features=17)

    def test_effective_margin_default_formula(self):
        config = PSSConfig(num_features=2)
        assert config.effective_margin == int(1.93 * 2 + 14)

    def test_effective_margin_override(self):
        config = PSSConfig(num_features=2, training_margin=7)
        assert config.effective_margin == 7
