"""Reference (pre-refactor) implementations for identity testing.

Two frozen generations live here:

* :class:`ReferenceWeightMatrix` / :class:`ReferencePerceptron` preserve,
  verbatim, the plain list-of-lists weight matrix and the re-hashing
  perceptron update path the hot-path acceleration layer replaced.  The
  accelerated stack in :mod:`repro.core.weights` /
  :mod:`repro.core.perceptron` must stay *bit-identical* to these - same
  scores, same trained weights, same snapshots - which
  ``tests/core/test_fastpath_identity.py`` checks property-style, and
  ``benchmarks/test_microbench_core.py`` uses as the perf baseline.
* :class:`ReferenceService` (with :class:`ReferenceDomain` /
  :class:`ReferenceHandle`) preserves the pre-kernel *monolithic*
  ``PredictionService``: one flat dict of domains, no shards, no
  admission.  The layered :class:`~repro.core.kernel.service
  .ShardedService` in single-shard mode must stay bit-identical to this
  - same scores, stats, generation counters, and snapshots - which
  ``tests/core/test_kernel_identity.py`` checks property-style.

Do not "optimize" this file: its value is being the slow, obviously
correct specification.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import PSSConfig, ServiceConfig
from repro.core.errors import DomainError, FeatureError
from repro.core.hashing import table_index
from repro.core.models import create_model, ensure_builtin_models
from repro.core.policy import ClientIdentity, open_policy
from repro.core.stats import PredictionStats
from repro.core.weights import saturate


class ReferenceWeightMatrix:
    """The seed repo's WeightMatrix: list-of-lists, hash-per-call."""

    def __init__(self, config: PSSConfig) -> None:
        self._config = config
        self._rows = [
            [0] * config.entries_per_feature
            for _ in range(config.num_features)
        ]
        self._bias = 0

    @property
    def config(self) -> PSSConfig:
        return self._config

    @property
    def bias(self) -> int:
        return self._bias

    def _check_features(self, features: Iterable[int]) -> list[int]:
        feats = list(features)
        if len(feats) != self._config.num_features:
            raise FeatureError(
                f"expected {self._config.num_features} features, "
                f"got {len(feats)}"
            )
        for value in feats:
            if not isinstance(value, int) or isinstance(value, bool):
                raise FeatureError(
                    f"features must be ints, got {value!r}"
                )
        return feats

    def indices(self, features: Iterable[int]) -> list[int]:
        feats = self._check_features(features)
        entries = self._config.entries_per_feature
        seed = self._config.seed
        return [
            table_index(i, value, entries, seed)
            for i, value in enumerate(feats)
        ]

    def selected(self, features: Iterable[int]) -> list[int]:
        return [
            self._rows[row][col]
            for row, col in enumerate(self.indices(features))
        ]

    def dot(self, features: Iterable[int]) -> int:
        return self._bias + sum(self.selected(features))

    def adjust(self, features: Iterable[int], delta: int) -> None:
        lo, hi = self._config.weight_min, self._config.weight_max
        for row, col in enumerate(self.indices(features)):
            self._rows[row][col] = saturate(
                self._rows[row][col] + delta, lo, hi
            )
        self._bias = saturate(self._bias + delta, lo, hi)

    def reset_entry(self, features: Iterable[int]) -> None:
        for row, col in enumerate(self.indices(features)):
            self._rows[row][col] = 0

    def reset_all(self) -> None:
        for row in self._rows:
            for col in range(len(row)):
                row[col] = 0
        self._bias = 0

    def nonzero_count(self) -> int:
        count = 1 if self._bias else 0
        for row in self._rows:
            count += sum(1 for w in row if w)
        return count

    def iter_weights(self):
        for row in self._rows:
            yield from row
        yield self._bias

    def to_state(self) -> dict:
        return {
            "rows": [list(row) for row in self._rows],
            "bias": self._bias,
        }

    def load_state(self, state: dict) -> None:
        rows = state["rows"]
        if len(rows) != len(self._rows) or any(
            len(row) != self._config.entries_per_feature for row in rows
        ):
            raise FeatureError("snapshot shape does not match configuration")
        lo, hi = self._config.weight_min, self._config.weight_max
        self._rows = [
            [saturate(int(w), lo, hi) for w in row] for row in rows
        ]
        self._bias = saturate(int(state["bias"]), lo, hi)


class ReferencePerceptron:
    """The seed repo's HashedPerceptron: score() re-hashes inside update."""

    def __init__(self, config: PSSConfig) -> None:
        self.config = config
        self._weights = ReferenceWeightMatrix(config)

    @property
    def weights(self) -> ReferenceWeightMatrix:
        return self._weights

    def score(self, features: Sequence[int]) -> int:
        return self._weights.dot(features)

    def predict(self, features: Sequence[int]) -> int:
        return self.score(features)

    def decide(self, features: Sequence[int]) -> bool:
        return self.score(features) >= self.config.threshold

    def update(self, features: Sequence[int], direction: bool) -> None:
        score = self.score(features)
        agreed = (score >= self.config.threshold) == direction
        if agreed and abs(score) > self.config.effective_margin:
            return
        self._weights.adjust(features, 1 if direction else -1)

    def reset(self, features: Sequence[int], reset_all: bool) -> None:
        if reset_all:
            self._weights.reset_all()
        else:
            self._weights.reset_entry(features)

    def to_state(self) -> dict:
        return {"kind": "perceptron", "weights": self._weights.to_state()}

    def load_state(self, state: dict) -> None:
        self._weights.load_state(state["weights"])


class ReferenceDomain:
    """The pre-kernel monolith's Domain, minus the shard fields."""

    def __init__(self, name: str, config: PSSConfig, model,
                 model_name: str, policy=None) -> None:
        self.name = name
        self.config = config
        self.model = model
        self.model_name = model_name
        self.policy = policy or open_policy()
        self.stats = PredictionStats()
        self.generation_offset = 0

    @property
    def generation(self) -> int:
        model_generation = getattr(self.model, "generation", None)
        if model_generation is None:
            return self.generation_offset
        return self.generation_offset + model_generation

    def predict(self, features: Sequence[int]) -> int:
        score = self.model.predict(features)
        self.stats.record_prediction(score, self.config.threshold)
        return score

    def record_cached_prediction(self, score: int) -> None:
        self.stats.record_cached_prediction(score, self.config.threshold)

    def update(self, features: Sequence[int], direction: bool) -> None:
        self.model.update(features, direction)
        if getattr(self.model, "generation", None) is None:
            self.generation_offset += 1
        self.stats.record_update(direction)

    def reset(self, features: Sequence[int], reset_all: bool) -> None:
        self.model.reset(features, reset_all)
        if getattr(self.model, "generation", None) is None:
            self.generation_offset += 1
        self.stats.record_reset()


class ReferenceHandle:
    """The pre-kernel monolith's DomainHandle: policy check only."""

    def __init__(self, domain: ReferenceDomain,
                 identity: ClientIdentity) -> None:
        self._domain = domain
        self._identity = identity

    @property
    def domain_name(self) -> str:
        return self._domain.name

    @property
    def threshold(self) -> int:
        return self._domain.config.threshold

    @property
    def generation(self) -> int:
        return self._domain.generation

    def predict(self, features: Sequence[int]) -> int:
        self._domain.policy.check_predict(self._identity,
                                          self._domain.name)
        return self._domain.predict(features)

    def record_cached_prediction(self, score: int) -> None:
        self._domain.policy.check_predict(self._identity,
                                          self._domain.name)
        self._domain.record_cached_prediction(score)

    def update(self, features: Sequence[int], direction: bool) -> None:
        self._domain.policy.check_update(self._identity,
                                         self._domain.name)
        self._domain.update(features, direction)

    def reset(self, features: Sequence[int], reset_all: bool) -> None:
        self._domain.policy.check_reset(self._identity,
                                        self._domain.name)
        self._domain.reset(features, reset_all)


class ReferenceService:
    """The pre-kernel monolithic PredictionService: one flat domain dict.

    Frozen from the pre-refactor ``core/service.py``; the domain
    management, resolution, and bookkeeping semantics here are the
    specification the single-shard :class:`~repro.core.kernel.service
    .ShardedService` must match bit for bit.  Client/transport wiring is
    intentionally absent - it was moved, not changed, and the transports
    are shared code either way.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        ensure_builtin_models()
        self.config = config or ServiceConfig()
        self._domains: dict[str, ReferenceDomain] = {}

    def create_domain(self, name: str,
                      config: PSSConfig | None = None,
                      model: str = "perceptron",
                      policy=None) -> ReferenceDomain:
        if name in self._domains:
            raise DomainError(f"domain {name!r} already exists")
        if len(self._domains) >= self.config.max_domains:
            raise DomainError(
                f"service is full ({self.config.max_domains} domains)"
            )
        domain_config = config or PSSConfig()
        domain = ReferenceDomain(
            name=name,
            config=domain_config,
            model=create_model(model, domain_config),
            model_name=model,
            policy=policy,
        )
        self._domains[name] = domain
        return domain

    def domain(self, name: str) -> ReferenceDomain:
        try:
            return self._domains[name]
        except KeyError:
            raise DomainError(f"unknown domain {name!r}") from None

    def has_domain(self, name: str) -> bool:
        return name in self._domains

    def remove_domain(self, name: str) -> None:
        if name not in self._domains:
            raise DomainError(f"unknown domain {name!r}")
        del self._domains[name]

    def domain_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._domains))

    def handle(self, name: str,
               identity: ClientIdentity | None = None,
               config: PSSConfig | None = None,
               model: str = "perceptron") -> ReferenceHandle:
        if name not in self._domains:
            if not self.config.implicit_domains:
                raise DomainError(f"unknown domain {name!r}")
            self.create_domain(name, config=config, model=model)
        return ReferenceHandle(self._domains[name],
                               identity or ClientIdentity())

    def predict(self, name: str, features: Sequence[int]) -> int:
        return self.domain(name).predict(features)

    def update(self, name: str, features: Sequence[int],
               direction: bool) -> None:
        self.domain(name).update(features, direction)

    def reset(self, name: str, features: Sequence[int],
              reset_all: bool = False) -> None:
        self.domain(name).reset(features, reset_all)
