"""Reference (pre-acceleration) implementations for identity testing.

These classes preserve, verbatim, the plain list-of-lists weight matrix and
the re-hashing perceptron update path the hot-path acceleration layer
replaced.  The accelerated stack in :mod:`repro.core.weights` /
:mod:`repro.core.perceptron` must stay *bit-identical* to these - same
scores, same trained weights, same snapshots - which
``tests/core/test_fastpath_identity.py`` checks property-style, and
``benchmarks/test_microbench_core.py`` uses as the perf baseline.

Do not "optimize" this file: its value is being the slow, obviously
correct specification.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.config import PSSConfig
from repro.core.errors import FeatureError
from repro.core.hashing import table_index
from repro.core.weights import saturate


class ReferenceWeightMatrix:
    """The seed repo's WeightMatrix: list-of-lists, hash-per-call."""

    def __init__(self, config: PSSConfig) -> None:
        self._config = config
        self._rows = [
            [0] * config.entries_per_feature
            for _ in range(config.num_features)
        ]
        self._bias = 0

    @property
    def config(self) -> PSSConfig:
        return self._config

    @property
    def bias(self) -> int:
        return self._bias

    def _check_features(self, features: Iterable[int]) -> list[int]:
        feats = list(features)
        if len(feats) != self._config.num_features:
            raise FeatureError(
                f"expected {self._config.num_features} features, "
                f"got {len(feats)}"
            )
        for value in feats:
            if not isinstance(value, int) or isinstance(value, bool):
                raise FeatureError(
                    f"features must be ints, got {value!r}"
                )
        return feats

    def indices(self, features: Iterable[int]) -> list[int]:
        feats = self._check_features(features)
        entries = self._config.entries_per_feature
        seed = self._config.seed
        return [
            table_index(i, value, entries, seed)
            for i, value in enumerate(feats)
        ]

    def selected(self, features: Iterable[int]) -> list[int]:
        return [
            self._rows[row][col]
            for row, col in enumerate(self.indices(features))
        ]

    def dot(self, features: Iterable[int]) -> int:
        return self._bias + sum(self.selected(features))

    def adjust(self, features: Iterable[int], delta: int) -> None:
        lo, hi = self._config.weight_min, self._config.weight_max
        for row, col in enumerate(self.indices(features)):
            self._rows[row][col] = saturate(
                self._rows[row][col] + delta, lo, hi
            )
        self._bias = saturate(self._bias + delta, lo, hi)

    def reset_entry(self, features: Iterable[int]) -> None:
        for row, col in enumerate(self.indices(features)):
            self._rows[row][col] = 0

    def reset_all(self) -> None:
        for row in self._rows:
            for col in range(len(row)):
                row[col] = 0
        self._bias = 0

    def nonzero_count(self) -> int:
        count = 1 if self._bias else 0
        for row in self._rows:
            count += sum(1 for w in row if w)
        return count

    def iter_weights(self):
        for row in self._rows:
            yield from row
        yield self._bias

    def to_state(self) -> dict:
        return {
            "rows": [list(row) for row in self._rows],
            "bias": self._bias,
        }

    def load_state(self, state: dict) -> None:
        rows = state["rows"]
        if len(rows) != len(self._rows) or any(
            len(row) != self._config.entries_per_feature for row in rows
        ):
            raise FeatureError("snapshot shape does not match configuration")
        lo, hi = self._config.weight_min, self._config.weight_max
        self._rows = [
            [saturate(int(w), lo, hi) for w in row] for row in rows
        ]
        self._bias = saturate(int(state["bias"]), lo, hi)


class ReferencePerceptron:
    """The seed repo's HashedPerceptron: score() re-hashes inside update."""

    def __init__(self, config: PSSConfig) -> None:
        self.config = config
        self._weights = ReferenceWeightMatrix(config)

    @property
    def weights(self) -> ReferenceWeightMatrix:
        return self._weights

    def score(self, features: Sequence[int]) -> int:
        return self._weights.dot(features)

    def predict(self, features: Sequence[int]) -> int:
        return self.score(features)

    def decide(self, features: Sequence[int]) -> bool:
        return self.score(features) >= self.config.threshold

    def update(self, features: Sequence[int], direction: bool) -> None:
        score = self.score(features)
        agreed = (score >= self.config.threshold) == direction
        if agreed and abs(score) > self.config.effective_margin:
            return
        self._weights.adjust(features, 1 if direction else -1)

    def reset(self, features: Sequence[int], reset_all: bool) -> None:
        if reset_all:
            self._weights.reset_all()
        else:
            self._weights.reset_entry(features)

    def to_state(self) -> dict:
        return {"kind": "perceptron", "weights": self._weights.to_state()}

    def load_state(self, state: dict) -> None:
        self._weights.load_state(state["weights"])
