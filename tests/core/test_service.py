"""Tests for the PredictionService, domains, and client handles."""

import pytest

from repro.core import (
    ClientIdentity,
    DomainError,
    PredictionService,
    PSSConfig,
    ServiceConfig,
)


class TestDomainManagement:
    def test_create_and_lookup(self):
        s = PredictionService()
        s.create_domain("a", config=PSSConfig(num_features=3))
        assert s.has_domain("a")
        assert s.domain("a").config.num_features == 3

    def test_duplicate_create_raises(self):
        s = PredictionService()
        s.create_domain("a")
        with pytest.raises(DomainError):
            s.create_domain("a")

    def test_unknown_domain_raises(self):
        s = PredictionService()
        with pytest.raises(DomainError):
            s.domain("missing")

    def test_remove(self):
        s = PredictionService()
        s.create_domain("a")
        s.remove_domain("a")
        assert not s.has_domain("a")
        with pytest.raises(DomainError):
            s.remove_domain("a")

    def test_domain_names_sorted(self):
        s = PredictionService()
        for name in ("zeta", "alpha", "mid"):
            s.create_domain(name)
        assert s.domain_names() == ("alpha", "mid", "zeta")

    def test_max_domains_enforced(self):
        s = PredictionService(ServiceConfig(max_domains=2))
        s.create_domain("a")
        s.create_domain("b")
        with pytest.raises(DomainError):
            s.create_domain("c")

    def test_implicit_creation_via_connect(self):
        s = PredictionService()
        client = s.connect("auto", config=PSSConfig(num_features=1))
        assert s.has_domain("auto")
        assert client.predict([5]) == 0

    def test_implicit_creation_disabled(self):
        s = PredictionService(ServiceConfig(implicit_domains=False))
        with pytest.raises(DomainError):
            s.connect("auto")


class TestPaperSignatureAPI:
    """The three in-kernel calls: predict / update / reset."""

    def test_predict_update_reset_cycle(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=2))
        assert s.predict("d", [1, 2]) == 0
        for _ in range(10):
            s.update("d", [1, 2], True)
        assert s.predict("d", [1, 2]) > 0
        s.reset("d", [1, 2], reset_all=True)
        assert s.predict("d", [1, 2]) == 0

    def test_selective_reset(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=1))
        for _ in range(10):
            s.update("d", [1], True)
            s.update("d", [999], False)
        s.reset("d", [1], reset_all=False)
        assert s.predict("d", [999]) < 0


class TestClient:
    def test_predict_bool_uses_domain_threshold(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=1, threshold=5))
        c = s.connect("d")
        assert c.predict_bool([1]) is False  # score 0 < threshold 5

    def test_reward_penalize_shortcuts(self):
        s = PredictionService()
        c = s.connect("d", config=PSSConfig(num_features=1), batch_size=1)
        for _ in range(10):
            c.reward([4])
        assert c.predict([4]) > 0
        for _ in range(30):
            c.penalize([4])
        assert c.predict([4]) < 0

    def test_context_manager_flushes(self):
        s = PredictionService()
        with s.connect("d", config=PSSConfig(num_features=1),
                       batch_size=100) as c:
            c.reward([1])
            assert c.pending_updates == 1
        assert s.domain("d").stats.updates == 1

    def test_two_clients_share_learning(self):
        """The system-service advantage: state is shared across clients."""
        s = PredictionService()
        a = s.connect("shared", config=PSSConfig(num_features=1),
                      batch_size=1)
        b = s.connect("shared")
        for _ in range(10):
            a.reward([7])
        assert b.predict([7]) > 0

    def test_syscall_transport_selectable(self):
        s = PredictionService()
        c = s.connect("d", config=PSSConfig(num_features=1),
                      transport="syscall")
        c.predict([1])
        assert c.transport_name == "syscall"
        assert c.latency.syscalls == 1
        assert c.latency.vdso_calls == 0

    def test_default_batch_size_comes_from_domain_config(self):
        s = PredictionService()
        config = PSSConfig(num_features=1, update_batch_size=3)
        c = s.connect("d", config=config)
        c.reward([1])
        c.reward([1])
        assert c.pending_updates == 2
        c.reward([1])  # hits batch size 3 -> auto flush
        assert c.pending_updates == 0


class TestStatsAndReports:
    def test_stats_track_activity(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=1))
        s.predict("d", [1])
        s.update("d", [1], True)
        s.update("d", [1], False)
        s.reset("d", [1])
        stats = s.domain("d").stats
        assert stats.predictions == 1
        assert stats.updates == 2
        assert stats.rewards == 1
        assert stats.penalties == 1
        assert stats.resets == 1
        assert stats.reward_rate == 0.5

    def test_reports_sorted_and_complete(self):
        s = PredictionService()
        s.create_domain("b", model="majority")
        s.create_domain("a")
        reports = s.reports()
        assert [r.name for r in reports] == ["a", "b"]
        assert reports[1].model == "majority"


class TestAlternativeModels:
    @pytest.mark.parametrize("model", [
        "perceptron", "linear", "naive-bayes", "stumps", "majority",
    ])
    def test_all_builtin_models_learn_a_constant_direction(self, model):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=2), model=model)
        for _ in range(40):
            s.update("d", [5, 6], True)
        assert s.predict("d", [5, 6]) > 0

    @pytest.mark.parametrize("model", ["always-true", "always-false"])
    def test_constant_models(self, model):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=1), model=model)
        score = s.predict("d", [1])
        assert (score > 0) == (model == "always-true")

    def test_unknown_model_raises(self):
        from repro.core.errors import ModelError
        s = PredictionService()
        with pytest.raises(ModelError):
            s.create_domain("d", model="oracle")


class TestWeightGeneration:
    def test_starts_at_zero_and_bumps_on_mutation(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=2))
        domain = s.domain("d")
        assert domain.generation == 0
        s.predict("d", [1, 2])
        assert domain.generation == 0  # reads never bump
        s.update("d", [1, 2], True)
        generation_after_update = domain.generation
        assert generation_after_update > 0
        s.reset("d", [1, 2], reset_all=True)
        assert domain.generation > generation_after_update

    def test_margin_skipped_update_does_not_bump(self):
        # The perceptron discards feedback once confident past the
        # margin; discarded feedback must not invalidate score caches.
        config = PSSConfig(num_features=2, training_margin=0)
        s = PredictionService()
        s.create_domain("d", config=config)
        domain = s.domain("d")
        for _ in range(10):
            s.update("d", [1, 2], True)
        settled = domain.generation
        s.update("d", [1, 2], True)  # agreed, |score| > margin: skipped
        assert domain.generation == settled

    def test_models_without_counter_bump_per_feedback(self):
        s = PredictionService()
        s.create_domain("d", config=PSSConfig(num_features=2),
                        model="majority")
        domain = s.domain("d")
        s.update("d", [1, 2], True)
        s.update("d", [1, 2], True)
        assert domain.generation == 2

    def test_handle_exposes_generation(self):
        s = PredictionService()
        handle = s.handle("d", config=PSSConfig(num_features=2))
        assert handle.generation == 0
        handle.update([1, 2], True)
        assert handle.generation == s.domain("d").generation


class TestFastPathReport:
    def test_report_carries_cache_and_generation_counters(self):
        s = PredictionService()
        client = s.connect("d", config=PSSConfig(num_features=2),
                           transport="vdso")
        for _ in range(10):
            client.predict([1, 2])
        report = s.domain("d").report()
        assert report.generation == 0
        # One model evaluation; nine cache-served predictions.
        assert report.stats.predictions == 10
        assert report.stats.cached_predictions == 9
        assert report.cached_prediction_rate == pytest.approx(0.9)
        assert report.index_cache_misses == 1

    def test_cached_predictions_survive_snapshot_round_trip(self):
        import dataclasses
        from repro.core.stats import PredictionStats
        stats = PredictionStats()
        stats.record_cached_prediction(5, 0)
        restored = PredictionStats(**dataclasses.asdict(stats))
        assert restored.cached_predictions == 1
        assert restored.predictions == 1
