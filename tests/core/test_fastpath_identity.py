"""Property tests: the accelerated hot path is bit-identical to the
reference pure-Python implementation.

Three layers are compared against ``tests/core/reference_impl.py``:

* :class:`repro.core.weights.WeightMatrix` (flat array + salt table +
  LRU index cache) vs the list-of-lists reference matrix;
* :class:`repro.core.perceptron.HashedPerceptron` (single-pass
  predict-and-select update) vs the re-hashing reference perceptron;
* the full service stack through a vDSO client (generation-keyed score
  cache) vs direct reference evaluation.

Identity means: every score equal, trained weights equal, snapshots
round-trip equal, across randomized interleavings of the paper's three
calls.  Vectors are drawn from a small pool so cache hits actually occur
(a cache that is never hit proves nothing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionService, PSSConfig
from repro.core.perceptron import HashedPerceptron
from repro.core.weights import WeightMatrix

from tests.core.reference_impl import (
    ReferencePerceptron,
    ReferenceWeightMatrix,
)


def configs():
    return st.builds(
        PSSConfig,
        num_features=st.integers(1, 4),
        entries_per_feature=st.sampled_from([1, 2, 16, 64]),
        weight_bits=st.integers(2, 10),
        threshold=st.integers(-2, 2),
        training_margin=st.one_of(st.none(), st.integers(0, 20)),
        seed=st.integers(0, 3),
    )


def vector_pools(config_strategy=None):
    """A config plus a small pool of feature vectors sized to it."""
    return (config_strategy or configs()).flatmap(
        lambda config: st.tuples(
            st.just(config),
            st.lists(
                st.lists(
                    st.integers(-1_000_000, 1_000_000),
                    min_size=config.num_features,
                    max_size=config.num_features,
                ).map(tuple),
                min_size=1, max_size=6, unique=True,
            ),
        )
    )


def ops(n_vectors: int):
    """Randomized op stream indexing into the vector pool."""
    return st.lists(
        st.tuples(
            st.sampled_from(["predict", "update", "reset", "reset_all"]),
            st.integers(0, n_vectors - 1),
            st.booleans(),
        ),
        max_size=60,
    )


class TestWeightMatrixIdentity:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_dot_adjust_reset_identical(self, data):
        config, pool = data.draw(vector_pools())
        stream = data.draw(ops(len(pool)))
        fast = WeightMatrix(config)
        reference = ReferenceWeightMatrix(config)
        for op, vec_index, flag in stream:
            vector = pool[vec_index]
            if op == "predict":
                assert fast.dot(vector) == reference.dot(vector)
                assert fast.selected(vector) == reference.selected(vector)
                assert fast.indices(vector) == reference.indices(vector)
            elif op == "update":
                delta = 1 if flag else -1
                fast.adjust(vector, delta)
                reference.adjust(vector, delta)
            elif op == "reset":
                fast.reset_entry(vector)
                reference.reset_entry(vector)
            else:
                fast.reset_all()
                reference.reset_all()
        assert list(fast.iter_weights()) == list(reference.iter_weights())
        assert fast.to_state() == reference.to_state()
        assert fast.nonzero_count() == reference.nonzero_count()

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_snapshot_round_trip_identical(self, data):
        config, pool = data.draw(vector_pools())
        deltas = data.draw(st.lists(
            st.tuples(st.integers(0, len(pool) - 1),
                      st.sampled_from([1, -1])),
            max_size=30,
        ))
        fast = WeightMatrix(config)
        reference = ReferenceWeightMatrix(config)
        for vec_index, delta in deltas:
            fast.adjust(pool[vec_index], delta)
            reference.adjust(pool[vec_index], delta)
        # Cross-restore: each implementation loads the *other's* snapshot.
        fast_restored = WeightMatrix(config)
        fast_restored.load_state(reference.to_state())
        reference_restored = ReferenceWeightMatrix(config)
        reference_restored.load_state(fast.to_state())
        assert list(fast_restored.iter_weights()) \
            == list(reference_restored.iter_weights())
        assert fast_restored.to_state() == fast.to_state()


class TestPerceptronIdentity:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_train_and_score_identical(self, data):
        config, pool = data.draw(vector_pools())
        stream = data.draw(ops(len(pool)))
        fast = HashedPerceptron(config)
        reference = ReferencePerceptron(config)
        for op, vec_index, flag in stream:
            vector = pool[vec_index]
            if op == "predict":
                assert fast.predict(vector) == reference.predict(vector)
                assert fast.decide(vector) == reference.decide(vector)
            elif op == "update":
                fast.update(vector, flag)
                reference.update(vector, flag)
            else:
                fast.reset(vector, reset_all=(op == "reset_all"))
                reference.reset(vector, reset_all=(op == "reset_all"))
        assert fast.to_state() == reference.to_state()


class TestServiceStackIdentity:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_vdso_client_identical_to_reference(self, data):
        """End to end: vDSO client (score cache on) vs the reference.

        ``batch_size=1`` delivers every update immediately, so the
        reference model sees feedback at the same points the service
        does and scores stay comparable call by call.
        """
        config, pool = data.draw(vector_pools())
        stream = data.draw(ops(len(pool)))
        service = PredictionService()
        client = service.connect("identity", config=config,
                                 transport="vdso", batch_size=1)
        reference = ReferencePerceptron(config)
        for op, vec_index, flag in stream:
            vector = pool[vec_index]
            if op == "predict":
                assert client.predict(list(vector)) \
                    == reference.predict(vector)
            elif op == "update":
                client.update(list(vector), flag)
                reference.update(vector, flag)
            else:
                client.reset(list(vector), reset_all=(op == "reset_all"))
                reference.reset(vector, reset_all=(op == "reset_all"))
        domain = service.domain("identity")
        assert domain.model.to_state() == reference.to_state()
        # The cache served hits (when the stream repeated a vector with
        # weights unchanged) and every served score matched - but stats
        # must count cached predictions as predictions all the same.
        predictions = sum(1 for op, _, _ in stream if op == "predict")
        assert domain.stats.predictions == predictions
        assert domain.stats.cached_predictions \
            == client.latency.cache_hits