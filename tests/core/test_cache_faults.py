"""Interplay of the generation-keyed score cache with fault injection.

The vDSO score cache and stale-read injection both answer predictions
without evaluating the model, for opposite reasons: the cache because the
weights provably did not change, staleness because a read-only mapping can
lag the kernel's writes.  These tests pin down their composition:

* injected staleness is never *masked* - a memoized fresh score must not
  be returned on a read the injector marked stale;
* stale answers are never *double-served* - a stale score must not enter
  the generation cache and outlive the injection window;
* the injected fault sequence stays deterministic with caching on.
"""

import pytest

from repro.core import PredictionService, PSSConfig
from repro.core.faults import FaultInjector, FaultPlan

CONFIG = PSSConfig(num_features=2, entries_per_feature=64)


def make_client(plan=None, batch_size=1):
    service = PredictionService()
    client = service.connect(
        "cache-faults", config=CONFIG, transport="vdso",
        batch_size=batch_size,
    )
    if plan is not None:
        client.attach_fault_injector(FaultInjector(plan))
    return service, client


def train_until_score_changes(client, features, direction=True,
                              attempts=50):
    """Apply updates until the served score moves, returning old/new."""
    before = client.predict(features)
    for _ in range(attempts):
        client.update(features, direction)
        after = client.predict(features)
        if after != before:
            return before, after
    raise AssertionError("training never moved the score")


class TestStalenessNotMasked:
    def test_warm_cache_does_not_mask_injected_staleness(self):
        """A score memoized pre-injection must not answer a stale read.

        Warm the generation cache, train (generation bump), then attach
        an always-stale injector: the next predict must serve the stale
        protocol's answer (a fresh read, since its stale cache is cold),
        not the pre-training memoized score.
        """
        service, client = make_client()
        features = (5, 9)
        old_score, new_score = train_until_score_changes(client, features)
        assert client.predict(features) == new_score  # cache warm
        client.attach_fault_injector(
            FaultInjector(FaultPlan(seed=0, stale_read_rate=1.0))
        )
        # Stale cache is empty, so the read falls through to the service
        # and must see the *trained* weights - not the stale-protocol
        # cache, and not any pre-injection memoized value.
        assert client.predict(features) == new_score

    def test_stale_reads_serve_lagging_score_with_cache_layer_present(self):
        """The pre-acceleration staleness semantics survive unchanged."""
        service, client = make_client(
            plan=FaultPlan(seed=0, stale_read_rate=1.0)
        )
        features = (1, 2)
        first = client.predict(features)  # fresh; primes the stale cache
        for _ in range(30):
            client.update(features, True)
        # Weights moved, but every read is stale: the old score persists.
        assert client.predict(features) == first
        assert service.domain("cache-faults").model.predict(
            list(features)) != first


class TestStaleScoresNotDoubleServed:
    def test_detaching_injector_discards_stale_answers(self):
        """A stale answer must not be re-served from the score cache.

        While injected, reads keep serving the lagging score.  Once the
        injector detaches, the very next read must be fresh - if stale
        answers had leaked into the generation cache, it would still
        serve the old score here.
        """
        service, client = make_client(
            plan=FaultPlan(seed=0, stale_read_rate=1.0)
        )
        features = (3, 4)
        stale_score = client.predict(features)
        for _ in range(30):
            client.update(features, True)
        assert client.predict(features) == stale_score  # still lagging
        client.attach_fault_injector(None)  # mapping healed
        fresh = client.predict(features)
        assert fresh != stale_score
        assert fresh == service.domain("cache-faults").model.predict(
            list(features))
        # And the healed fast path memoizes the *fresh* score.
        assert client.predict(features) == fresh
        assert client.latency.cache_hits >= 1

    def test_cache_not_populated_during_injection_window(self):
        _, client = make_client(plan=FaultPlan(seed=1, stale_read_rate=0.5))
        for i in range(40):
            client.predict((i % 4, 7))
        # All reads went through the stale protocol: the generation
        # cache must have stayed cold (no hits, no misses recorded).
        assert client.latency.cache_hits == 0
        assert client.latency.cache_misses == 0


class TestDeterminism:
    @pytest.mark.parametrize("rate", [0.1, 0.5, 1.0])
    def test_fault_sequence_reproducible_with_caching(self, rate):
        """Same plan + same workload = identical injected fault stats."""
        def run():
            service, client = make_client(
                plan=FaultPlan(seed=7, stale_read_rate=rate,
                               syscall_failure_rate=0.0)
            )
            scores = []
            for i in range(100):
                scores.append(client.predict((i % 5, 1)))
                if i % 3 == 0:
                    client.update((i % 5, 1), i % 2 == 0)
            injector = client._transport.injector
            return scores, injector.stats.stale_reads

        first_scores, first_stale = run()
        second_scores, second_stale = run()
        assert first_scores == second_scores
        assert first_stale == second_stale
        assert first_stale > 0

    def test_zero_stale_rate_keeps_fast_path_active(self):
        """An injector that cannot inject staleness must not disable the
        score cache (its stale dice consume no randomness)."""
        _, client = make_client(
            plan=FaultPlan(seed=0, stale_read_rate=0.0,
                           syscall_failure_rate=0.0)
        )
        for _ in range(10):
            client.predict((1, 2))
        assert client.latency.cache_hits == 9
        assert client.latency.cache_misses == 1
