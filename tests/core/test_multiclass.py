"""Tests for the multi-way choice helpers built on the binary service."""

import pytest

from repro.core import PredictionService, PSSConfig
from repro.core.errors import ConfigError
from repro.core.multiclass import BinarySearchTuner, MultiChoiceClient

CFG = PSSConfig(num_features=1)


class TestMultiChoiceClient:
    def make(self, service=None):
        return MultiChoiceClient(
            service or PredictionService(), "algo",
            options=("quick", "merge", "radix"), config=CFG,
            batch_size=1,
        )

    def test_learns_context_dependent_best_option(self):
        chooser = self.make()
        # Ground truth: small inputs -> quick, large -> merge.
        def best(n):
            return "quick" if n < 100 else "merge"

        for _ in range(80):
            for n in (10, 2000):
                chosen = chooser.choose([n])
                chooser.feedback([n], chosen, reward=chosen == best(n))
        assert chooser.choose([10]) == "quick"
        assert chooser.choose([2000]) == "merge"

    def test_scores_cover_all_options(self):
        chooser = self.make()
        scores = chooser.scores([5])
        assert set(scores) == {"quick", "merge", "radix"}

    def test_cold_start_deterministic(self):
        assert self.make().choose([7]) == self.make().choose([7])

    def test_domains_created_with_prefix(self):
        service = PredictionService()
        self.make(service)
        assert "algo/quick" in service.domain_names()

    def test_rejects_degenerate_options(self):
        with pytest.raises(ConfigError):
            MultiChoiceClient(PredictionService(), "x", options=("a",),
                              config=CFG)
        with pytest.raises(ConfigError):
            MultiChoiceClient(PredictionService(), "x",
                              options=("a", "a"), config=CFG)

    def test_feedback_unknown_option_rejected(self):
        chooser = self.make()
        with pytest.raises(ConfigError):
            chooser.feedback([1], "bogo", reward=True)

    def test_flush_delivers_buffered_updates(self):
        service = PredictionService()
        chooser = MultiChoiceClient(service, "algo",
                                    options=("a", "b"), config=CFG,
                                    batch_size=50)
        chooser.feedback([1], "a", reward=True)
        assert service.domain("algo/a").stats.updates == 0
        chooser.flush()
        assert service.domain("algo/a").stats.updates == 1


class TestBinarySearchTuner:
    def make(self, **kwargs):
        kwargs.setdefault("service", PredictionService())
        kwargs.setdefault("domain", "knob")
        kwargs.setdefault("lo", 0)
        kwargs.setdefault("hi", 10)
        kwargs.setdefault("value", 5)
        kwargs.setdefault("config", CFG)
        return BinarySearchTuner(**kwargs)

    def test_stays_within_bounds(self):
        tuner = self.make()
        for i in range(100):
            value = tuner.propose()
            assert 0 <= value <= 10
            tuner.feedback(improved=i % 2 == 0)

    def test_converges_toward_a_known_optimum(self):
        """Reward moves toward 8; the tuner must end near it."""
        tuner = self.make()
        previous_distance = abs(tuner.value - 8)
        for _ in range(200):
            value = tuner.propose()
            distance = abs(value - 8)
            tuner.feedback(improved=distance < previous_distance)
            previous_distance = distance
        assert abs(tuner.value - 8) <= 2

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigError):
            self.make(value=99)
        with pytest.raises(ConfigError):
            self.make(step=0)

    def test_feedback_before_propose_is_noop(self):
        tuner = self.make()
        tuner.feedback(improved=True)  # must not raise
