"""Live resharding: incremental slot handoff under traffic.

The migration contract: the service is never paused (traffic
interleaves with ``step()``), routing is consistent at every point,
and scores are bit-identical to a service that never resharded -
the *same* domain objects move, so there is nothing to drift.
"""

import pytest

from repro.core import PredictionService, PSSConfig
from repro.core.errors import DomainError
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.kernel import ReplicaPromoter, ShardedCheckpointManager
from repro.core.persistence import snapshot_service

CONFIG = PSSConfig(num_features=1)

NAMES = [f"domain-{i}" for i in range(12)]


def populate(service, updates=3):
    for name in NAMES:
        service.create_domain(name, config=CONFIG)
        for i in range(updates):
            service.update(name, [i], bool(i % 2))


def traffic(service, round_index):
    for offset, name in enumerate(NAMES):
        feature = (round_index + offset) % 5
        service.update(name, [feature], offset % 2 == 0)
        service.predict(name, [feature])


class TestFullReshard:
    def test_grow_preserves_state_and_routing(self):
        service = PredictionService(num_shards=2)
        populate(service)
        before = snapshot_service(service)["domains"]
        report = service.reshard(4)
        assert service.num_shards == 4
        assert report.new_shard_count == 4
        assert report.moved_slots > 0
        assert snapshot_service(service)["domains"] == before
        for name in NAMES:
            domain = service.domain(name)
            assert domain.shard_id == service.shard_of(name)
            assert domain.shard_label == str(domain.shard_id)

    def test_shrink_truncates_doomed_shards(self):
        service = PredictionService(num_shards=4)
        populate(service)
        before = snapshot_service(service)["domains"]
        service.reshard(2)
        assert service.num_shards == 2
        assert len(service.shards) == 2
        assert snapshot_service(service)["domains"] == before
        for name in NAMES:
            assert service.domain(name).shard_id == service.shard_of(name)

    def test_slots_sum_to_ring_after_reshard(self):
        service = PredictionService(num_shards=2)
        populate(service)
        service.reshard(3)
        summaries = service.shard_summaries()
        assert sum(s["slots"] for s in summaries) == service.ring.num_slots
        assert all(s["slots"] > 0 for s in summaries)

    def test_noop_reshard_moves_nothing(self):
        service = PredictionService(num_shards=3)
        populate(service)
        report = service.reshard(3)
        assert report.moved_slots == 0
        assert report.moved_domains == 0


class TestLiveMigration:
    def test_interleaved_traffic_is_bit_identical(self):
        baseline = PredictionService(num_shards=2)
        live = PredictionService(num_shards=2)
        populate(baseline)
        populate(live)
        migrator = live.begin_reshard(4)
        round_index = 0
        while not migrator.done:
            # One slot handoff, then a full round of live traffic on
            # both services - the migrating one must not diverge.
            migrator.step()
            traffic(baseline, round_index)
            traffic(live, round_index)
            round_index += 1
        assert live.num_shards == 4
        assert snapshot_service(live)["domains"] \
            == snapshot_service(baseline)["domains"]
        scores = [
            (baseline.predict(name, [0]), live.predict(name, [0]))
            for name in NAMES
        ]
        assert all(a == b for a, b in scores)

    def test_handles_stay_valid_across_migration(self):
        service = PredictionService(num_shards=2)
        populate(service)
        handle = service.handle(NAMES[0])
        before = handle.predict([1])
        service.reshard(4)
        # The same domain object moved shards; the open handle still
        # reaches it and sees identical state.
        assert handle.predict([1]) == before
        handle.update([1], True)
        assert service.domain(NAMES[0]).stats.updates > 0

    def test_concurrent_reshard_refused(self):
        service = PredictionService(num_shards=2)
        populate(service)
        service.begin_reshard(4)
        with pytest.raises(DomainError):
            service.begin_reshard(3)

    def test_next_reshard_allowed_once_done(self):
        service = PredictionService(num_shards=2)
        populate(service)
        migrator = service.begin_reshard(4)
        while not migrator.done:
            migrator.step()
        service.reshard(3)
        assert service.num_shards == 3

    def test_injected_stalls_retry_until_done(self):
        service = PredictionService(num_shards=2)
        populate(service)
        injector = FaultInjector(
            FaultPlan(seed=7, migration_stall_rate=0.5)
        )
        migrator = service.begin_reshard(4, injector=injector)
        steps = 0
        while not migrator.done:
            migrator.step()
            steps += 1
            assert steps < 1000
        assert migrator.stalls > 0
        assert injector.stats.migration_stalls == migrator.stalls
        report = migrator.report()
        assert report.stalls == migrator.stalls
        assert report.moved_slots == steps - migrator.stalls

    def test_stall_on_down_shard_until_promotion(self):
        service = PredictionService(num_shards=2, num_replicas=1)
        populate(service)
        service.sync_replicas()
        service.crash_shard(0)
        migrator = service.begin_reshard(4)
        pending = migrator.pending_slots
        for _ in range(3):
            # Every step stalls while a migration endpoint is down.
            assert not migrator.step()
        assert migrator.stalls >= 1
        assert migrator.pending_slots <= pending
        ReplicaPromoter(service).promote(0)
        while not migrator.step():
            pass
        assert service.num_shards == 4
        for name in NAMES:
            assert service.domain(name).shard_id == service.shard_of(name)

    def test_reshard_refused_while_shard_down(self):
        service = PredictionService(num_shards=2, num_replicas=1)
        populate(service)
        service.sync_replicas()
        service.crash_shard(1)
        with pytest.raises(DomainError):
            service.reshard(4)


class TestCheckpointAcrossReshard:
    def test_manager_follows_live_topology(self, tmp_path):
        service = PredictionService(num_shards=2)
        populate(service)
        manager = ShardedCheckpointManager(service, tmp_path)
        manager.checkpoint()
        service.reshard(4)
        traffic(service, 0)
        # Post-reshard checkpoint covers grown shards and the new
        # manifest records the new topology.
        manager.checkpoint()
        manifest = manager.read_manifest()
        assert manifest["num_shards"] == 4

        restored = PredictionService(num_shards=4)
        result = ShardedCheckpointManager(restored, tmp_path).recover()
        assert result.skipped == ()
        assert snapshot_service(restored)["domains"] \
            == snapshot_service(service)["domains"]

    def test_recovery_into_different_shard_count(self, tmp_path):
        service = PredictionService(num_shards=2)
        populate(service)
        service.reshard(3)
        ShardedCheckpointManager(service, tmp_path).checkpoint()

        restored = PredictionService(num_shards=5)
        ShardedCheckpointManager(restored, tmp_path).recover()
        assert snapshot_service(restored)["domains"] \
            == snapshot_service(service)["domains"]
        for name in NAMES:
            assert restored.domain(name).shard_id \
                == restored.shard_of(name)
