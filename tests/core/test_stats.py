"""Tests for prediction and latency accounting."""

import pytest

from repro.core.stats import (
    DomainReport,
    LatencyAccount,
    PredictionStats,
    ResilienceStats,
)


class TestPredictionStats:
    def test_prediction_counting_respects_threshold(self):
        stats = PredictionStats()
        stats.record_prediction(5, threshold=0)
        stats.record_prediction(-3, threshold=0)
        stats.record_prediction(0, threshold=0)  # ties are positive
        assert stats.predictions == 3
        assert stats.positive_predictions == 2
        assert stats.negative_predictions == 1

    def test_update_counting(self):
        stats = PredictionStats()
        for direction in (True, True, False):
            stats.record_update(direction)
        assert stats.updates == 3
        assert stats.rewards == 2
        assert stats.penalties == 1
        assert stats.reward_rate == pytest.approx(2 / 3)

    def test_reward_rate_empty(self):
        assert PredictionStats().reward_rate == 0.0

    def test_merge(self):
        a = PredictionStats(predictions=3, positive_predictions=2,
                            updates=4, rewards=1, penalties=3, resets=1)
        b = PredictionStats(predictions=1, positive_predictions=1,
                            updates=2, rewards=2, penalties=0, resets=0)
        a.merge(b)
        assert a.predictions == 4
        assert a.rewards == 3
        assert a.resets == 1


class TestLatencyAccount:
    def test_charges_accumulate(self):
        account = LatencyAccount()
        account.charge_vdso(4.19)
        account.charge_vdso(4.19)
        account.charge_syscall(68.0, records=5)
        assert account.vdso_calls == 2
        assert account.syscalls == 1
        assert account.update_records == 5
        assert account.total_ns == pytest.approx(8.38 + 68.0)

    def test_means(self):
        account = LatencyAccount()
        assert account.mean_vdso_ns == 0.0
        assert account.mean_syscall_ns == 0.0
        account.charge_vdso(4.0)
        account.charge_vdso(6.0)
        assert account.mean_vdso_ns == pytest.approx(5.0)

    def test_snapshot_keys(self):
        snap = LatencyAccount().snapshot()
        assert set(snap) == {
            "vdso_ns", "syscall_ns", "total_ns", "vdso_calls",
            "syscalls", "update_records",
            "cache_hits", "cache_misses", "cache_hit_rate", "ops",
        }

    def test_op_aggregates(self):
        account = LatencyAccount()
        account.charge_op("predict", 4.0)
        account.charge_op("predict", 6.0)
        account.charge_op("flush", 100.0)
        assert account.mean_op_ns("predict") == pytest.approx(5.0)
        assert account.mean_op_ns("flush") == pytest.approx(100.0)
        assert account.mean_op_ns("reset") == 0.0
        snap = account.snapshot()
        assert snap["ops"]["predict"] == {"calls": 2, "ns": 10.0}

    def test_cache_counters(self):
        account = LatencyAccount()
        assert account.cache_hit_rate == 0.0
        account.record_cache_hit()
        account.record_cache_hit()
        account.record_cache_miss()
        assert account.cache_hits == 2
        assert account.cache_misses == 1
        assert account.cache_hit_rate == pytest.approx(2 / 3)

    def test_merge(self):
        a = LatencyAccount()
        a.charge_vdso(4.0)
        a.charge_op("predict", 4.0)
        a.record_cache_hit()
        b = LatencyAccount()
        b.charge_vdso(6.0)
        b.charge_syscall(68.0, records=3)
        b.charge_op("predict", 6.0)
        b.charge_op("flush", 68.0)
        b.record_cache_miss()
        a.merge(b)
        assert a.vdso_calls == 2
        assert a.mean_vdso_ns == pytest.approx(5.0)
        assert a.syscalls == 1
        assert a.update_records == 3
        assert a.cache_hits == 1 and a.cache_misses == 1
        assert a.op_calls["predict"] == 2
        assert a.mean_op_ns("predict") == pytest.approx(5.0)
        assert a.op_calls["flush"] == 1

    def test_merge_with_empty_is_identity(self):
        a = LatencyAccount()
        a.charge_vdso(4.19)
        before = a.snapshot()
        a.merge(LatencyAccount())
        assert a.snapshot() == before

    def test_snapshot_round_trip(self):
        account = LatencyAccount()
        account.charge_vdso(4.19)
        account.charge_syscall(68.0, records=2)
        account.charge_op("predict", 4.19)
        account.charge_op("flush", 68.0)
        account.record_cache_hit()
        account.record_cache_miss()
        restored = LatencyAccount.from_snapshot(account.snapshot())
        assert restored.snapshot() == account.snapshot()
        assert restored.total_ns == pytest.approx(account.total_ns)
        assert restored.cache_hit_rate == \
            pytest.approx(account.cache_hit_rate)

    def test_from_snapshot_tolerates_missing_ops(self):
        snap = LatencyAccount().snapshot()
        del snap["ops"]
        restored = LatencyAccount.from_snapshot(snap)
        assert restored.op_ns == {}


class TestResilienceStats:
    def test_any_activity(self):
        assert not ResilienceStats().any_activity
        assert ResilienceStats(predictions=1).any_activity
        assert ResilienceStats(breaker_opens=1).any_activity

    def test_merge(self):
        a = ResilienceStats(predictions=5, fallback_predictions=2,
                            retries=1, backoff_ns=100.0)
        b = ResilienceStats(predictions=3, fallback_predictions=1,
                            dropped_updates=4, backoff_ns=50.0)
        a.merge(b)
        assert a.predictions == 8
        assert a.fallback_predictions == 3
        assert a.dropped_updates == 4
        assert a.backoff_ns == pytest.approx(150.0)
        assert a.degraded_fraction == pytest.approx(3 / 8)


class TestDomainReport:
    def test_defaults(self):
        report = DomainReport(name="d", model="perceptron")
        assert report.stats.predictions == 0
        assert report.latency.total_ns == 0.0
        assert report.resilience is None
        assert report.latency_percentiles == {}

    def test_index_cache_hit_rate(self):
        report = DomainReport(name="d", model="perceptron",
                              index_cache_hits=3, index_cache_misses=1)
        assert report.index_cache_hit_rate == pytest.approx(0.75)
        assert DomainReport(name="d", model="p").index_cache_hit_rate \
            == 0.0

    def test_cached_prediction_rate(self):
        stats = PredictionStats(predictions=4, cached_predictions=1)
        report = DomainReport(name="d", model="perceptron", stats=stats)
        assert report.cached_prediction_rate == pytest.approx(0.25)
        assert DomainReport(name="d", model="p").cached_prediction_rate \
            == 0.0
