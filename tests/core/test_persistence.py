"""Tests for snapshot/restore (cross-invocation learning)."""

import json

import pytest

from repro.core import (
    PredictionService,
    PSSConfig,
    load_service,
    restore_service,
    save_service,
    snapshot_service,
)
from repro.core.errors import PersistenceError


def trained_service():
    s = PredictionService()
    s.create_domain("hle", config=PSSConfig(num_features=2))
    s.create_domain("jit", config=PSSConfig(num_features=3),
                    model="naive-bayes")
    for _ in range(20):
        s.update("hle", [3, 4], True)
        s.update("jit", [1, 2, 3], False)
    return s


class TestSnapshotRoundTrip:
    def test_predictions_survive_round_trip(self):
        s = trained_service()
        snapshot = snapshot_service(s)
        fresh = PredictionService()
        restore_service(fresh, snapshot)
        assert fresh.predict("hle", [3, 4]) == s.predict("hle", [3, 4])
        assert fresh.predict("jit", [1, 2, 3]) == s.predict(
            "jit", [1, 2, 3]
        )

    def test_config_and_model_name_restored(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s))
        assert fresh.domain("jit").model_name == "naive-bayes"
        assert fresh.domain("jit").config.num_features == 3

    def test_stats_restored_when_included(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s, include_stats=True))
        assert fresh.domain("hle").stats.updates == 20

    def test_stats_omitted_when_excluded(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s, include_stats=False))
        assert fresh.domain("hle").stats.updates == 0

    def test_snapshot_is_json_serializable(self):
        snapshot = snapshot_service(trained_service())
        text = json.dumps(snapshot)
        assert json.loads(text) == snapshot

    def test_restore_replaces_existing_domain(self):
        s = trained_service()
        snapshot = snapshot_service(s)
        target = PredictionService()
        target.create_domain("hle", config=PSSConfig(num_features=2))
        for _ in range(50):
            target.update("hle", [3, 4], False)
        restore_service(target, snapshot)
        assert target.predict("hle", [3, 4]) > 0  # trained positive


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        s = trained_service()
        path = tmp_path / "pss.json"
        save_service(s, path)
        fresh = PredictionService()
        load_service(fresh, path)
        assert fresh.predict("hle", [3, 4]) > 0

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), tmp_path / "missing.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), path)


class TestSnapshotValidation:
    def test_wrong_version_rejected(self):
        with pytest.raises(PersistenceError):
            restore_service(
                PredictionService(), {"version": 99, "domains": {}}
            )

    def test_missing_keys_rejected(self):
        snapshot = {"version": 1, "domains": {"d": {"config": {}}}}
        with pytest.raises(PersistenceError):
            restore_service(PredictionService(), snapshot)

    def test_malformed_config_rejected(self):
        snapshot = {
            "version": 1,
            "domains": {
                "d": {
                    "config": {"num_features": 99},
                    "model_name": "perceptron",
                    "model_state": {},
                }
            },
        }
        with pytest.raises(PersistenceError):
            restore_service(PredictionService(), snapshot)


class TestCrossInvocationLearning:
    def test_second_invocation_starts_warm(self, tmp_path):
        """The Figure 6 pattern: run N+1 inherits run N's weights."""
        path = tmp_path / "state.json"

        # Run 1: cold start, learn that [8, 9] should be True.
        run1 = PredictionService()
        run1.create_domain("d", config=PSSConfig(num_features=2))
        assert run1.predict("d", [8, 9]) == 0  # cold
        for _ in range(15):
            run1.update("d", [8, 9], True)
        save_service(run1, path)

        # Run 2: a fresh process restores and is immediately warm.
        run2 = PredictionService()
        load_service(run2, path)
        assert run2.predict("d", [8, 9]) > 0
