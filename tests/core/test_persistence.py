"""Tests for snapshot/restore (cross-invocation learning)."""

import json

import pytest

from repro.core import (
    PredictionService,
    PSSConfig,
    load_service,
    restore_service,
    save_service,
    snapshot_service,
)
from repro.core.errors import PersistenceError


def trained_service():
    s = PredictionService()
    s.create_domain("hle", config=PSSConfig(num_features=2))
    s.create_domain("jit", config=PSSConfig(num_features=3),
                    model="naive-bayes")
    for _ in range(20):
        s.update("hle", [3, 4], True)
        s.update("jit", [1, 2, 3], False)
    return s


class TestSnapshotRoundTrip:
    def test_predictions_survive_round_trip(self):
        s = trained_service()
        snapshot = snapshot_service(s)
        fresh = PredictionService()
        restore_service(fresh, snapshot)
        assert fresh.predict("hle", [3, 4]) == s.predict("hle", [3, 4])
        assert fresh.predict("jit", [1, 2, 3]) == s.predict(
            "jit", [1, 2, 3]
        )

    def test_config_and_model_name_restored(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s))
        assert fresh.domain("jit").model_name == "naive-bayes"
        assert fresh.domain("jit").config.num_features == 3

    def test_stats_restored_when_included(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s, include_stats=True))
        assert fresh.domain("hle").stats.updates == 20

    def test_stats_omitted_when_excluded(self):
        s = trained_service()
        fresh = PredictionService()
        restore_service(fresh, snapshot_service(s, include_stats=False))
        assert fresh.domain("hle").stats.updates == 0

    def test_snapshot_is_json_serializable(self):
        snapshot = snapshot_service(trained_service())
        text = json.dumps(snapshot)
        assert json.loads(text) == snapshot

    def test_restore_replaces_existing_domain(self):
        s = trained_service()
        snapshot = snapshot_service(s)
        target = PredictionService()
        target.create_domain("hle", config=PSSConfig(num_features=2))
        for _ in range(50):
            target.update("hle", [3, 4], False)
        restore_service(target, snapshot)
        assert target.predict("hle", [3, 4]) > 0  # trained positive


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        s = trained_service()
        path = tmp_path / "pss.json"
        save_service(s, path)
        fresh = PredictionService()
        load_service(fresh, path)
        assert fresh.predict("hle", [3, 4]) > 0

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), tmp_path / "missing.json")

    def test_load_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), path)


class TestSnapshotValidation:
    def test_wrong_version_rejected(self):
        with pytest.raises(PersistenceError):
            restore_service(
                PredictionService(), {"version": 99, "domains": {}}
            )

    def test_missing_keys_rejected(self):
        snapshot = {"version": 1, "domains": {"d": {"config": {}}}}
        with pytest.raises(PersistenceError):
            restore_service(PredictionService(), snapshot)

    def test_malformed_config_rejected(self):
        snapshot = {
            "version": 1,
            "domains": {
                "d": {
                    "config": {"num_features": 99},
                    "model_name": "perceptron",
                    "model_state": {},
                }
            },
        }
        with pytest.raises(PersistenceError):
            restore_service(PredictionService(), snapshot)


class TestCrossInvocationLearning:
    def test_second_invocation_starts_warm(self, tmp_path):
        """The Figure 6 pattern: run N+1 inherits run N's weights."""
        path = tmp_path / "state.json"

        # Run 1: cold start, learn that [8, 9] should be True.
        run1 = PredictionService()
        run1.create_domain("d", config=PSSConfig(num_features=2))
        assert run1.predict("d", [8, 9]) == 0  # cold
        for _ in range(15):
            run1.update("d", [8, 9], True)
        save_service(run1, path)

        # Run 2: a fresh process restores and is immediately warm.
        run2 = PredictionService()
        load_service(run2, path)
        assert run2.predict("d", [8, 9]) > 0


class TestCorruptionDetection:
    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        save_service(trained_service(), path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), path)

    def test_bit_flip_in_payload_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        save_service(trained_service(), path)
        snapshot = json.loads(path.read_text())
        # Flip one weight inside the domain payload: the JSON still
        # parses, only the checksum can tell.
        rows = snapshot["domains"]["hle"]["model_state"]["weights"]["rows"]
        rows[0][0] += 1
        path.write_text(json.dumps(snapshot))
        with pytest.raises(PersistenceError, match="checksum"):
            load_service(PredictionService(), path)

    def test_garbage_bytes_rejected_as_persistence_error(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_bytes(bytes(range(256)) * 4)
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        save_service(trained_service(), path)
        snapshot = json.loads(path.read_text())
        snapshot["version"] = 99
        path.write_text(json.dumps(snapshot))
        with pytest.raises(PersistenceError, match="version"):
            load_service(PredictionService(), path)

    def test_non_object_root_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError):
            load_service(PredictionService(), path)

    def test_legacy_snapshot_without_checksum_still_loads(self):
        s = trained_service()
        snapshot = snapshot_service(s)
        del snapshot["checksum"]
        fresh = PredictionService()
        restore_service(fresh, snapshot)
        assert fresh.predict("hle", [3, 4]) == s.predict("hle", [3, 4])


class TestAtomicRestore:
    def prior_service(self):
        s = PredictionService()
        s.create_domain("hle", config=PSSConfig(num_features=2))
        for _ in range(10):
            s.update("hle", [1, 2], True)
        return s

    def test_failed_restore_leaves_prior_state(self):
        prior = self.prior_service()
        before = snapshot_service(prior)
        bad = snapshot_service(trained_service())
        # Corrupt the *second* domain so a non-atomic restore would
        # already have replaced the first before noticing.  Drop the
        # checksum so the staging logic (not the checksum) is what saves
        # us.
        bad["domains"]["jit"]["model_name"] = "no-such-model"
        del bad["checksum"]
        with pytest.raises(PersistenceError):
            restore_service(prior, bad)
        assert snapshot_service(prior) == before

    def test_checksum_failure_leaves_prior_state(self):
        prior = self.prior_service()
        before = snapshot_service(prior)
        bad = snapshot_service(trained_service())
        bad["checksum"] = (bad["checksum"] + 1) % 2**32
        with pytest.raises(PersistenceError):
            restore_service(prior, bad)
        assert snapshot_service(prior) == before
