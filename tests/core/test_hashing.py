"""Unit and property tests for feature hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashing import hash_feature, mix64, table_index


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_zero_is_not_fixed_point(self):
        # splitmix64 maps 0 -> 0; our usage always salts, but document it.
        assert mix64(1) != 1

    def test_distinct_inputs_distinct_outputs_smoke(self):
        outputs = {mix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    @given(st.integers())
    def test_range_is_64_bit(self, value):
        assert 0 <= mix64(value) < 2**64

    @given(st.integers())
    def test_negative_inputs_accepted(self, value):
        assert mix64(value) == mix64(value)


class TestHashFeature:
    def test_feature_index_salts_hash(self):
        assert hash_feature(0, 42) != hash_feature(1, 42)

    def test_seed_decorrelates_domains(self):
        assert hash_feature(0, 42, seed=0) != hash_feature(0, 42, seed=1)

    def test_same_inputs_same_hash(self):
        assert hash_feature(3, -17, seed=9) == hash_feature(3, -17, seed=9)

    @given(st.integers(min_value=0, max_value=15), st.integers(),
           st.integers(min_value=0, max_value=2**32))
    def test_always_64_bit(self, index, value, seed):
        assert 0 <= hash_feature(index, value, seed) < 2**64


class TestTableIndex:
    @given(st.integers(min_value=0, max_value=15), st.integers(),
           st.integers(min_value=1, max_value=4096))
    def test_index_in_range(self, feature_index, value, entries):
        assert 0 <= table_index(feature_index, value, entries) < entries

    def test_distribution_is_roughly_uniform(self):
        entries = 64
        counts = [0] * entries
        n = 64 * 200
        for v in range(n):
            counts[table_index(0, v, entries)] += 1
        expected = n / entries
        # Loose uniformity bound: no bucket off by more than 50%.
        assert all(0.5 * expected < c < 1.5 * expected for c in counts)

    def test_sequential_values_spread(self):
        # Sequential counter values (common in practice) must not cluster.
        idx = [table_index(0, v, 1024) for v in range(100)]
        assert len(set(idx)) > 90
