"""Tests for the saturating weight matrix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import PSSConfig
from repro.core.errors import FeatureError
from repro.core.weights import WeightMatrix, saturate


def make_matrix(num_features=2, entries=64, weight_bits=8, seed=0):
    return WeightMatrix(PSSConfig(
        num_features=num_features,
        entries_per_feature=entries,
        weight_bits=weight_bits,
        seed=seed,
    ))


class TestSaturate:
    @given(st.integers(), st.integers(-100, 0), st.integers(1, 100))
    def test_result_within_bounds(self, value, lo, hi):
        assert lo <= saturate(value, lo, hi) <= hi

    def test_identity_inside_range(self):
        assert saturate(5, -10, 10) == 5


class TestWeightMatrixBasics:
    def test_starts_at_zero(self):
        m = make_matrix()
        assert m.dot([1, 2]) == 0
        assert m.nonzero_count() == 0

    def test_adjust_moves_dot(self):
        m = make_matrix()
        m.adjust([1, 2], +1)
        # bias + two feature weights each moved by +1
        assert m.dot([1, 2]) == 3

    def test_adjust_negative(self):
        m = make_matrix()
        m.adjust([1, 2], -1)
        assert m.dot([1, 2]) == -3

    def test_different_features_mostly_independent(self):
        m = make_matrix(entries=1024)
        m.adjust([1, 2], +1)
        # A different vector shares only the bias (hash collisions are
        # possible but vanishingly unlikely at these values).
        assert m.dot([900001, 900002]) == 1  # bias only

    def test_wrong_length_raises(self):
        m = make_matrix()
        with pytest.raises(FeatureError):
            m.dot([1])
        with pytest.raises(FeatureError):
            m.adjust([1, 2, 3], 1)

    def test_non_integer_feature_raises(self):
        m = make_matrix()
        with pytest.raises(FeatureError):
            m.dot([1.5, 2])
        with pytest.raises(FeatureError):
            m.dot([True, 2])


class TestSaturation:
    def test_weights_saturate_at_max(self):
        m = make_matrix(weight_bits=4)  # range -8..7
        for _ in range(100):
            m.adjust([1, 2], +1)
        assert m.dot([1, 2]) == 3 * 7

    def test_weights_saturate_at_min(self):
        m = make_matrix(weight_bits=4)
        for _ in range(100):
            m.adjust([1, 2], -1)
        assert m.dot([1, 2]) == 3 * -8

    @given(st.lists(st.sampled_from([+1, -1]), max_size=200))
    def test_dot_always_bounded(self, deltas):
        m = make_matrix(weight_bits=6)  # range -32..31
        for d in deltas:
            m.adjust([7, 9], d)
        assert -3 * 32 <= m.dot([7, 9]) <= 3 * 31


class TestReset:
    def test_reset_entry_clears_only_selected(self):
        m = make_matrix(entries=1024)
        m.adjust([1, 2], +1)
        m.adjust([500001, 500002], +1)
        m.reset_entry([1, 2])
        # First vector now only sees bias (2 adjustments -> bias == 2).
        assert m.dot([1, 2]) == 2
        assert m.dot([500001, 500002]) == 4  # bias + its own weights

    def test_reset_all_clears_everything(self):
        m = make_matrix()
        m.adjust([1, 2], +1)
        m.reset_all()
        assert m.nonzero_count() == 0
        assert m.dot([1, 2]) == 0


class TestStateRoundTrip:
    def test_round_trip_preserves_dot(self):
        m = make_matrix()
        for v in range(20):
            m.adjust([v, v * 3], +1 if v % 2 else -1)
        state = m.to_state()
        m2 = make_matrix()
        m2.load_state(state)
        for v in range(20):
            assert m2.dot([v, v * 3]) == m.dot([v, v * 3])

    def test_load_rejects_wrong_shape(self):
        m = make_matrix()
        bad = {"rows": [[0] * 8], "bias": 0}
        with pytest.raises(FeatureError):
            m.load_state(bad)

    def test_load_saturates_out_of_range_weights(self):
        m = make_matrix(entries=4, weight_bits=4)
        state = {"rows": [[100, 0, 0, 0], [0, -100, 0, 0]], "bias": 99}
        m.load_state(state)
        weights = list(m.iter_weights())
        assert max(weights) <= 7 and min(weights) >= -8

    def test_iter_weights_order_stable(self):
        m = make_matrix(entries=4)
        m.adjust([1, 2], +1)
        assert list(m.iter_weights()) == list(m.iter_weights())
