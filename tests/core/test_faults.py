"""Tests for the deterministic fault-injection framework."""

import pytest

from repro.core import (
    FaultInjector,
    FaultPlan,
    LatencyModel,
    TransportFault,
)
from repro.core.errors import ConfigError
from repro.core.transport import SyscallTransport, VdsoTransport

LAT = LatencyModel(vdso_predict_ns=4.19, syscall_ns=68.0,
                   batch_record_ns=1.0)


class CountingTarget:
    """Service target counting deliveries and varying scores."""

    def __init__(self):
        self.updates = []
        self.resets = 0
        self.score = 0

    def predict(self, features):
        return self.score

    def update(self, features, direction):
        self.updates.append((tuple(features), direction))

    def reset(self, features, reset_all):
        self.resets += 1


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(syscall_failure_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(stale_read_rate=-0.1)

    def test_flush_budget_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(flush_drop_rate=0.7, partial_flush_rate=0.7)

    def test_uniform_splits_flush_budget(self):
        plan = FaultPlan.uniform(0.4, seed=3)
        assert plan.syscall_failure_rate == 0.4
        assert plan.flush_drop_rate + plan.partial_flush_rate == \
            pytest.approx(0.4)
        assert plan.any_faults

    def test_zero_plan_has_no_faults(self):
        assert not FaultPlan().any_faults


class TestInjectorDeterminism:
    def drive(self, injector):
        decisions = []
        for _ in range(200):
            fault = injector.syscall_fault()
            decisions.append(fault.errno_name if fault else None)
            decisions.append(injector.stale_read())
            decisions.append(injector.flush_outcome(8))
        return decisions

    def test_same_seed_same_sequence(self):
        plan = FaultPlan.uniform(0.3, seed=11)
        a = self.drive(FaultInjector(plan))
        b = self.drive(FaultInjector(plan))
        assert a == b

    def test_different_seed_different_sequence(self):
        a = self.drive(FaultInjector(FaultPlan.uniform(0.3, seed=1)))
        b = self.drive(FaultInjector(FaultPlan.uniform(0.3, seed=2)))
        assert a != b

    def test_zero_rates_never_inject(self):
        injector = FaultInjector(FaultPlan(seed=5))
        for _ in range(100):
            assert injector.syscall_fault() is None
            assert not injector.stale_read()
            assert injector.flush_outcome(4) == 4
            assert not injector.corrupt_snapshot()
        assert injector.stats.total == 0

    def test_stats_count_injections(self):
        injector = FaultInjector(FaultPlan(seed=0,
                                           syscall_failure_rate=1.0))
        for _ in range(10):
            assert injector.syscall_fault() is not None
        assert injector.stats.syscall_faults == 10
        assert injector.stats.total == 10

    def test_corrupt_text_changes_one_character(self):
        injector = FaultInjector(FaultPlan(seed=0, corruption_rate=1.0))
        text = '{"version": 1, "domains": {}}'
        mangled = injector.corrupt_text(text)
        assert mangled != text
        assert len(mangled) == len(text)
        assert sum(a != b for a, b in zip(text, mangled)) == 1


class TestSyscallTransportFaults:
    def test_failed_predict_raises_but_charges(self):
        t = SyscallTransport(CountingTarget(), LAT)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, syscall_failure_rate=1.0))
        )
        with pytest.raises(TransportFault) as exc:
            t.predict([1, 2])
        assert exc.value.errno_name in ("EAGAIN", "EINTR")
        assert t.account.syscalls == 1

    def test_failed_update_delivers_nothing(self):
        target = CountingTarget()
        t = SyscallTransport(target, LAT)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, syscall_failure_rate=1.0))
        )
        with pytest.raises(TransportFault) as exc:
            t.update([1, 2], True)
        assert exc.value.lost_records == 0
        assert target.updates == []
        assert t.account.update_records == 0

    def test_detaching_injector_heals(self):
        t = SyscallTransport(CountingTarget(), LAT)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, syscall_failure_rate=1.0))
        )
        with pytest.raises(TransportFault):
            t.predict([1])
        t.attach_injector(None)
        assert t.predict([1]) == 0


class TestVdsoTransportFaults:
    def test_stale_read_returns_previous_score(self):
        target = CountingTarget()
        t = VdsoTransport(target, LAT, batch_size=4)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, stale_read_rate=1.0))
        )
        target.score = 5
        assert t.predict([1, 2]) == 5  # first read: nothing cached yet
        target.score = 9
        # Every read is stale, so the cached score keeps being served.
        assert t.predict([1, 2]) == 5

    def test_stale_reads_never_raise(self):
        t = VdsoTransport(CountingTarget(), LAT, batch_size=4)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, stale_read_rate=1.0))
        )
        for i in range(50):
            t.predict([i % 4])

    def test_dropped_flush_loses_whole_batch(self):
        target = CountingTarget()
        t = VdsoTransport(target, LAT, batch_size=4)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, flush_drop_rate=1.0))
        )
        with pytest.raises(TransportFault) as exc:
            for i in range(4):
                t.update([i], True)
        assert exc.value.lost_records == 4
        assert target.updates == []
        assert t.pending_updates == 0

    def test_partial_flush_delivers_prefix(self):
        target = CountingTarget()
        t = VdsoTransport(target, LAT, batch_size=8)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=1, partial_flush_rate=1.0))
        )
        for i in range(7):
            t.update([i], True)
        with pytest.raises(TransportFault) as exc:
            t.flush()
        delivered = len(target.updates)
        assert 0 <= delivered < 7
        assert exc.value.lost_records == 7 - delivered
        # Delivery order is preserved: the delivered part is a prefix.
        assert target.updates == [((i,), True) for i in range(delivered)]

    def test_failed_flush_still_charges_syscall(self):
        t = VdsoTransport(CountingTarget(), LAT, batch_size=4)
        t.attach_injector(
            FaultInjector(FaultPlan(seed=0, syscall_failure_rate=1.0))
        )
        t.update([1], True)
        with pytest.raises(TransportFault):
            t.flush()
        assert t.account.syscalls == 1
        assert t.account.update_records == 0

    def test_no_injector_means_no_behaviour_change(self):
        target = CountingTarget()
        t = VdsoTransport(target, LAT, batch_size=2)
        for i in range(6):
            t.update([i], True)
        assert len(target.updates) == 6
