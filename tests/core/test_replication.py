"""Follower replication, failover, and zero-downtime promotion.

What these tests pin down: followers are pure snapshots refreshed on
sync boundaries (bounded staleness, measurable as ``lag``); a crashed
shard serves reads from its freshest followers and refuses writes; a
promotion restores the freshest follower state in place - handles and
clients stay valid, generations stay strictly monotonic - and no
update acknowledged before the last sync is ever lost.
"""

import pytest

from repro.core import PredictionService, PSSConfig
from repro.core.errors import DomainError, ShardDownError, TransportFault
from repro.core.faults import FaultInjector, FaultPlan
from repro.core.kernel import (
    ReplicaPromoter,
    ShardedCheckpointManager,
)
from repro.core.persistence import snapshot_service

CONFIG = PSSConfig(num_features=1)

NAMES = [f"domain-{i}" for i in range(8)]


def populate(service, updates=4):
    for name in NAMES:
        service.create_domain(name, config=CONFIG)
        for i in range(updates):
            service.update(name, [i], bool(i % 2))


class TestSyncAndLag:
    def test_sync_refreshes_every_follower_once(self):
        service = PredictionService(num_shards=2, num_replicas=2)
        populate(service)
        refreshed = service.sync_replicas()
        assert refreshed == 2 * len(NAMES)
        for shard in service.shards:
            assert shard.replica_lag() == 0

    def test_clean_resync_costs_nothing(self):
        service = PredictionService(num_shards=2, num_replicas=1)
        populate(service)
        service.sync_replicas()
        # No generation moved: the generation gate skips every follower.
        assert service.sync_replicas() == 0

    def test_lag_counts_generations_behind(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        for _ in range(3):
            service.update(NAMES[0], [1], True)
        shard = service.shard(0)
        assert shard.replica_lag() == 3
        service.sync_replicas()
        assert shard.replica_lag() == 0

    def test_unseen_domain_counts_full_generation(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        # Never synced: every follower would answer from nothing.
        assert service.shard(0).replica_lag() \
            == max(service.domain(n).generation for n in NAMES)

    def test_injected_lag_skips_refreshes(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        injector = FaultInjector(FaultPlan(seed=3, replica_lag_rate=1.0))
        assert service.sync_replicas(injector=injector) == 0
        replica = service.shard(0).replicas[0]
        assert replica.lagged_refreshes == len(NAMES)
        assert service.shard(0).replica_lag() > 0

    def test_dropped_domains_leave_the_follower_set(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        service.remove_domain(NAMES[0])
        service.update(NAMES[1], [1], True)
        service.sync_replicas()
        followers = service.shard(0).replicas[0].followers
        assert NAMES[0] not in followers

    def test_replicated_summaries_report_lag(self):
        service = PredictionService(num_shards=2, num_replicas=2)
        populate(service)
        service.sync_replicas()
        for summary in service.shard_summaries():
            assert summary["replicas"] == 2
            assert summary["replica_lag"] == 0
            assert summary["down"] is False


class TestCrashAndFailover:
    def crashed_service(self, num_replicas=2):
        service = PredictionService(num_shards=1,
                                    num_replicas=num_replicas)
        populate(service)
        service.sync_replicas()
        service.crash_shard(0)
        return service

    def test_crash_is_idempotent_guarded(self):
        service = self.crashed_service()
        with pytest.raises(DomainError):
            service.crash_shard(0)

    def test_reads_fail_over_to_followers(self):
        live = PredictionService(num_shards=1, num_replicas=2)
        populate(live)
        expected = [live.predict(name, [1]) for name in NAMES]

        crashed = self.crashed_service()
        # Failover answers equal the primary's state at the sync
        # boundary - which is exactly the pre-crash trained state.
        got = [crashed.predict(name, [1]) for name in NAMES]
        assert got == expected
        assert crashed.shard(0).failover_predictions == len(NAMES)
        assert crashed.domain(NAMES[0]).stats.failover_predictions > 0

    def test_failover_round_robins_across_replicas(self):
        service = self.crashed_service(num_replicas=2)
        for i in range(4):
            service.predict(NAMES[0], [1])
        shard = service.shard(0)
        assert shard._failover_cursor == 4

    def test_writes_refuse_while_down(self):
        service = self.crashed_service()
        with pytest.raises(ShardDownError) as excinfo:
            service.update(NAMES[0], [1], True)
        assert isinstance(excinfo.value, TransportFault)
        assert excinfo.value.errno_name == "EHOSTDOWN"
        with pytest.raises(ShardDownError):
            service.reset(NAMES[0], [1])

    def test_unreplicated_crash_refuses_reads_too(self):
        service = PredictionService(num_shards=1, num_replicas=0)
        populate(service)
        service.crash_shard(0)
        with pytest.raises(ShardDownError):
            service.predict(NAMES[0], [1])

    def test_crash_bumps_generations_past_survivors(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        before = {n: service.domain(n).generation for n in NAMES}
        service.crash_shard(0)
        for name in NAMES:
            assert service.domain(name).generation > before[name]


class TestPromotion:
    def test_promotion_restores_freshest_follower(self):
        service = PredictionService(num_shards=1, num_replicas=2)
        populate(service)
        service.sync_replicas()
        expected = snapshot_service(service)["domains"]
        pre_crash = [service.predict(name, [1]) for name in NAMES]

        service.crash_shard(0)
        report = ReplicaPromoter(service).promote(0)
        assert report.restored == len(NAMES)
        assert report.cold == 0
        assert not service.shard(0).down
        # Model state rolls to the sync boundary: bit-identical weights
        # (modulo the generation counters promotion must advance).
        restored = snapshot_service(service)["domains"]
        for name in NAMES:
            assert restored[name]["model_state"]["weights"]["rows"] \
                == expected[name]["model_state"]["weights"]["rows"]
        assert [service.predict(name, [1]) for name in NAMES] == pre_crash

    def test_promotion_requires_a_down_shard(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        with pytest.raises(DomainError):
            ReplicaPromoter(service).promote(0)

    def test_generations_stay_strictly_monotonic(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        history = {n: [service.domain(n).generation] for n in NAMES}
        service.crash_shard(0)
        for name in NAMES:
            history[name].append(service.domain(name).generation)
        ReplicaPromoter(service).promote(0)
        for name in NAMES:
            history[name].append(service.domain(name).generation)
            first, crashed, promoted = history[name]
            assert first < crashed < promoted

    def test_domains_unseen_by_any_follower_restart_cold(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        service.create_domain("late-arrival", config=CONFIG)
        service.crash_shard(0)
        report = ReplicaPromoter(service).promote(0)
        assert report.restored == len(NAMES)
        assert report.cold == 1

    def test_promotion_rolls_a_shard_checkpoint(self, tmp_path):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        checkpoints = ShardedCheckpointManager(service, tmp_path)
        service.crash_shard(0)
        report = ReplicaPromoter(service, checkpoints=checkpoints) \
            .promote(0)
        assert report.checkpointed
        assert checkpoints.checkpoints_written == 1
        restored = PredictionService(num_shards=1)
        assert ShardedCheckpointManager(restored, tmp_path).recover() == 1

    def test_down_shards_never_checkpointed(self, tmp_path):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        checkpoints = ShardedCheckpointManager(service, tmp_path)
        checkpoints.checkpoint()
        good = (tmp_path / "shard-0000.json").read_text()
        service.crash_shard(0)
        # The primary now holds cold post-crash state; a checkpoint
        # here would overwrite the last good snapshot with it.
        assert checkpoints.checkpoint() == 0
        assert (tmp_path / "shard-0000.json").read_text() == good


class TestLostUpdateWindow:
    def test_no_acknowledged_update_lost_across_crash(self):
        """The headline invariant, in miniature: every update synced to
        a follower survives crash + promotion; only the documented
        window (updates after the last sync) is lost."""
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        service.sync_replicas()
        synced = snapshot_service(service)["domains"]
        # Updates in the post-sync window: legitimately lost on crash.
        for name in NAMES:
            service.update(name, [2], True)
        service.crash_shard(0)
        ReplicaPromoter(service).promote(0)
        restored = snapshot_service(service)["domains"]
        for name in NAMES:
            assert restored[name]["model_state"]["weights"]["rows"] \
                == synced[name]["model_state"]["weights"]["rows"]
        # Writes resume on the promoted state.
        for name in NAMES:
            service.update(name, [3], False)

    def test_vdso_client_survives_crash_and_promotion(self):
        service = PredictionService(num_shards=1, num_replicas=1)
        populate(service)
        client = service.connect(NAMES[0], batch_size=1)
        client.update([1], True)
        service.sync_replicas()
        score_before = client.predict([1])

        service.crash_shard(0)
        # The open client reads through failover transparently...
        assert client.predict([1]) == score_before
        # ...and its writes surface the shard-down transport fault.
        with pytest.raises(ShardDownError):
            client.update([2], True)

        ReplicaPromoter(service).promote(0)
        assert client.predict([1]) == score_before
        client.update([2], True)
