"""Tests for vDSO/syscall transports and the batch update buffer."""

import pytest

from repro.core.config import LatencyModel
from repro.core.errors import TransportClosedError, TransportError
from repro.core.transport import (
    BatchUpdateBuffer,
    SyscallTransport,
    VdsoTransport,
    make_transport,
)


class RecordingTarget:
    """Minimal service target recording the calls it receives."""

    def __init__(self):
        self.calls = []

    def predict(self, features):
        self.calls.append(("predict", tuple(features)))
        return 7

    def update(self, features, direction):
        self.calls.append(("update", tuple(features), direction))

    def reset(self, features, reset_all):
        self.calls.append(("reset", tuple(features), reset_all))


LAT = LatencyModel(vdso_predict_ns=4.19, syscall_ns=68.0,
                   batch_record_ns=1.0)


class TestSyscallTransport:
    def test_predict_charges_syscall(self):
        target = RecordingTarget()
        t = SyscallTransport(target, LAT)
        assert t.predict([1, 2]) == 7
        assert t.account.syscall_ns == 68.0
        assert t.account.vdso_ns == 0.0

    def test_update_immediate_delivery(self):
        target = RecordingTarget()
        t = SyscallTransport(target, LAT)
        t.update([1, 2], True)
        assert target.calls == [("update", (1, 2), True)]
        assert t.account.update_records == 1

    def test_ten_calls_cost_ten_syscalls(self):
        target = RecordingTarget()
        t = SyscallTransport(target, LAT)
        for _ in range(5):
            t.predict([1, 2])
            t.update([1, 2], True)
        assert t.account.syscalls == 10
        assert t.account.syscall_ns == pytest.approx(680.0)


class TestVdsoTransport:
    def test_predict_charges_vdso_only(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT)
        assert t.predict([1, 2]) == 7
        assert t.account.vdso_ns == pytest.approx(4.19)
        assert t.account.syscall_ns == 0.0

    def test_updates_buffered_until_batch_full(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=3)
        t.update([1, 2], True)
        t.update([3, 4], False)
        assert target.calls == []  # nothing delivered yet
        assert t.pending_updates == 2
        t.update([5, 6], True)  # fills the batch -> flush
        assert len(target.calls) == 3
        assert t.pending_updates == 0

    def test_flush_preserves_order(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=10)
        t.update([1, 1], True)
        t.update([2, 2], False)
        t.flush()
        assert target.calls == [
            ("update", (1, 1), True),
            ("update", (2, 2), False),
        ]

    def test_batch_cost_amortizes_boundary(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=32)
        for _ in range(32):
            t.update([1, 2], True)
        # One syscall of 68 + 32 * 1 record ns, not 32 * 68.
        assert t.account.syscalls == 1
        assert t.account.syscall_ns == pytest.approx(68.0 + 32.0)
        assert t.account.update_records == 32

    def test_empty_flush_is_free(self):
        t = VdsoTransport(RecordingTarget(), LAT)
        t.flush()
        assert t.account.syscalls == 0

    def test_reset_flushes_pending_first(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=10)
        t.update([1, 2], True)
        t.reset([0, 0], reset_all=True)
        kinds = [c[0] for c in target.calls]
        assert kinds == ["update", "reset"]

    def test_close_flushes(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=10)
        t.update([1, 2], True)
        t.close()
        assert ("update", (1, 2), True) in target.calls

    def test_vdso_vs_syscall_speedup_matches_paper(self):
        # The paper reports a >16x latency reduction for predictions.
        assert LAT.speedup_factor > 16


class TestBatchUpdateBuffer:
    def test_rejects_zero_capacity(self):
        with pytest.raises(TransportError):
            BatchUpdateBuffer(0)

    def test_add_past_capacity_raises(self):
        buf = BatchUpdateBuffer(1)
        buf.add([1], True)
        with pytest.raises(TransportError):
            buf.add([2], True)

    def test_drain_empties(self):
        buf = BatchUpdateBuffer(4)
        buf.add([1], True)
        records = buf.drain()
        assert records == [((1,), True)]
        assert len(buf) == 0
        assert buf.drain() == []


class VersionedTarget(RecordingTarget):
    """Recording target that also publishes a weight generation."""

    def __init__(self):
        super().__init__()
        self.generation = 0
        self.cached_recorded = []
        self.score = 7

    def predict(self, features):
        self.calls.append(("predict", tuple(features)))
        return self.score

    def record_cached_prediction(self, score):
        self.cached_recorded.append(score)

    def mutate(self, score):
        self.score = score
        self.generation += 1


class TestScoreCache:
    def test_no_generation_means_no_caching(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT)
        for _ in range(3):
            t.predict([1, 2])
        assert len(target.calls) == 3
        assert t.account.cache_hits == 0
        assert t.account.cache_misses == 0

    def test_repeat_predicts_hit_cache_without_crossing(self):
        target = VersionedTarget()
        t = VdsoTransport(target, LAT)
        for _ in range(5):
            assert t.predict([1, 2]) == 7
        # Only the first predict reached the service.
        assert len(target.calls) == 1
        assert t.account.cache_hits == 4
        assert t.account.cache_misses == 1
        # Cached serves were still accounted to the domain.
        assert target.cached_recorded == [7, 7, 7, 7]
        # And every read still paid the vDSO cost.
        assert t.account.vdso_calls == 5

    def test_generation_bump_invalidates(self):
        target = VersionedTarget()
        t = VdsoTransport(target, LAT)
        assert t.predict([1, 2]) == 7
        assert t.predict([1, 2]) == 7
        target.mutate(score=11)
        assert t.predict([1, 2]) == 11  # fresh read after invalidation
        assert t.predict([1, 2]) == 11  # cached again at the new gen
        assert len(target.calls) == 2
        assert t.account.cache_hits == 2
        assert t.account.cache_misses == 2

    def test_distinct_vectors_cached_independently(self):
        target = VersionedTarget()
        t = VdsoTransport(target, LAT)
        t.predict([1, 2])
        t.predict([3, 4])
        t.predict([1, 2])
        t.predict([3, 4])
        assert len(target.calls) == 2
        assert t.account.cache_hits == 2

    def test_score_cache_is_bounded(self):
        target = VersionedTarget()
        t = VdsoTransport(target, LAT)
        for i in range(VdsoTransport.SCORE_CACHE_ENTRIES + 10):
            t.predict([i, i])
        assert t.score_cache_size == VdsoTransport.SCORE_CACHE_ENTRIES

    def test_op_aggregates_split_predict_and_flush(self):
        target = VersionedTarget()
        t = VdsoTransport(target, LAT, batch_size=2)
        t.predict([1, 2])
        t.update([1, 2], True)
        t.update([1, 2], True)  # fills the batch -> flush
        assert t.account.op_calls["predict"] == 1
        assert t.account.mean_op_ns("predict") == pytest.approx(4.19)
        assert t.account.op_calls["flush"] == 1
        assert t.account.mean_op_ns("flush") == pytest.approx(68.0 + 2.0)


class TestMakeTransport:
    def test_known_kinds(self):
        target = RecordingTarget()
        assert make_transport("vdso", target).name == "vdso"
        assert make_transport("syscall", target).name == "syscall"

    def test_unknown_kind_raises(self):
        with pytest.raises(TransportError):
            make_transport("pigeon", RecordingTarget())


class TestCloseContract:
    @pytest.mark.parametrize("kind", ["vdso", "syscall"])
    def test_use_after_close_raises(self, kind):
        t = make_transport(kind, RecordingTarget(), LAT)
        t.close()
        assert t.closed
        with pytest.raises(TransportClosedError):
            t.predict([1, 2])
        with pytest.raises(TransportClosedError):
            t.update([1, 2], True)
        with pytest.raises(TransportClosedError):
            t.reset([1, 2], False)
        with pytest.raises(TransportClosedError):
            t.flush()

    @pytest.mark.parametrize("kind", ["vdso", "syscall"])
    def test_close_is_idempotent(self, kind):
        t = make_transport(kind, RecordingTarget(), LAT)
        t.close()
        t.close()  # must not raise
        assert t.closed

    def test_closed_error_is_a_transport_error(self):
        # Callers catching the broad transport error keep working.
        assert issubclass(TransportClosedError, TransportError)

    def test_close_flushes_pending_batch_once(self):
        target = RecordingTarget()
        t = VdsoTransport(target, LAT, batch_size=10)
        t.update([1, 2], True)
        t.close()
        t.close()
        assert target.calls.count(("update", (1, 2), True)) == 1
