"""Denial paths: domain policy and the admission layer.

Covers the two ways the kernel refuses a client-facing operation:

* **policy** - a ``private_policy`` domain rejects every other
  identity's predict/update/reset with :class:`PolicyError`;
* **admission** - per-tenant quotas refuse domain registration,
  predictions, and update delivery with
  :class:`QuotaExceededError`, which the :class:`ResilientClient`
  treats as fallback-eligible but *not* retryable (and never a
  breaker trip).
"""

import pytest

from repro.core import (
    AdmissionController,
    ClientIdentity,
    PredictionService,
    PSSConfig,
    QuotaExceededError,
    ResilienceConfig,
    TenantQuota,
    private_policy,
)
from repro.core.errors import PolicyError

OWNER = ClientIdentity(uid=1000, program="owner")
STRANGER = ClientIdentity(uid=2000, program="stranger")

CONFIG = PSSConfig(num_features=1)


class TestPolicyDenial:
    def setup_method(self):
        self.service = PredictionService()
        self.service.create_domain(
            "secret", config=CONFIG, policy=private_policy(OWNER)
        )

    def test_owner_passes(self):
        handle = self.service.handle("secret", identity=OWNER)
        handle.predict([1])
        handle.update([1], True)
        handle.reset([1], reset_all=True)

    def test_stranger_predict_denied(self):
        handle = self.service.handle("secret", identity=STRANGER)
        with pytest.raises(PolicyError):
            handle.predict([1])

    def test_stranger_update_denied(self):
        handle = self.service.handle("secret", identity=STRANGER)
        with pytest.raises(PolicyError):
            handle.update([1], True)

    def test_stranger_reset_denied(self):
        handle = self.service.handle("secret", identity=STRANGER)
        with pytest.raises(PolicyError):
            handle.reset([1], reset_all=False)

    def test_denied_ops_leave_no_trace_in_stats(self):
        handle = self.service.handle("secret", identity=STRANGER)
        for op in (lambda: handle.predict([1]),
                   lambda: handle.update([1], True),
                   lambda: handle.reset([1], False)):
            with pytest.raises(PolicyError):
                op()
        stats = self.service.domain("secret").stats
        assert (stats.predictions, stats.updates, stats.resets) == (0, 0, 0)


class TestQuotaEnforcement:
    def test_domain_quota(self):
        admission = AdmissionController()
        admission.set_quota(OWNER, TenantQuota(max_domains=2))
        service = PredictionService(admission=admission)
        service.handle("a", identity=OWNER, config=CONFIG)
        service.handle("b", identity=OWNER, config=CONFIG)
        with pytest.raises(QuotaExceededError) as exc_info:
            service.handle("c", identity=OWNER, config=CONFIG)
        assert exc_info.value.resource == "domains"
        assert exc_info.value.limit == 2
        assert exc_info.value.identity == OWNER
        assert not service.has_domain("c")
        assert admission.usage_for(OWNER).rejections == 1

    def test_remove_domain_releases_quota(self):
        admission = AdmissionController()
        admission.set_quota(OWNER, TenantQuota(max_domains=1))
        service = PredictionService(admission=admission)
        service.handle("a", identity=OWNER, config=CONFIG)
        with pytest.raises(QuotaExceededError):
            service.handle("b", identity=OWNER, config=CONFIG)
        service.remove_domain("a")
        service.handle("b", identity=OWNER, config=CONFIG)
        assert admission.usage_for(OWNER).domains == 1

    def test_predict_budget_through_handle(self):
        admission = AdmissionController()
        admission.set_quota(OWNER, TenantQuota(predict_budget=3))
        service = PredictionService(admission=admission)
        handle = service.handle("d", identity=OWNER, config=CONFIG)
        for i in range(3):
            handle.predict([i])
        with pytest.raises(QuotaExceededError) as exc_info:
            handle.predict([99])
        assert exc_info.value.resource == "predictions"
        assert admission.usage_for(OWNER).predictions == 3

    def test_update_budget_through_handle(self):
        admission = AdmissionController()
        admission.set_quota(OWNER, TenantQuota(update_budget=2))
        service = PredictionService(admission=admission)
        handle = service.handle("d", identity=OWNER, config=CONFIG)
        handle.update([1], True)
        handle.update([2], False)
        with pytest.raises(QuotaExceededError) as exc_info:
            handle.update([3], True)
        assert exc_info.value.resource == "updates"
        # The refused record never reached the domain.
        assert service.domain("d").stats.updates == 2

    def test_other_tenants_unaffected(self):
        admission = AdmissionController()
        admission.set_quota(OWNER, TenantQuota(predict_budget=0))
        service = PredictionService(admission=admission)
        service.create_domain("d", config=CONFIG)
        with pytest.raises(QuotaExceededError):
            service.handle("d", identity=OWNER).predict([1])
        # STRANGER has the (unlimited) default quota.
        service.handle("d", identity=STRANGER).predict([1])
        assert admission.usage_for(STRANGER).predictions == 1

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota(max_domains=-1)


class TestResilientClientQuotaPath:
    """Quota rejections fall back immediately: no retries, no breaker."""

    def make_client(self, quota, transport="syscall", batch_size=None):
        admission = AdmissionController()
        admission.set_quota(OWNER, quota)
        service = PredictionService(admission=admission)
        client = service.connect(
            "d", identity=OWNER, config=CONFIG,
            transport=transport, batch_size=batch_size,
            resilience=ResilienceConfig(), fallback=-7,
        )
        return service, admission, client

    def test_predict_falls_back_without_retrying(self):
        service, admission, client = self.make_client(
            TenantQuota(predict_budget=3)
        )
        scores = [client.predict([i]) for i in range(8)]
        assert scores[3:] == [-7] * 5
        assert client.stats.quota_rejections == 5
        assert client.stats.fallback_predictions == 5
        assert client.stats.retries == 0
        assert client.stats.transport_failures == 0
        assert client.breaker_state == "closed"
        assert client.last_prediction_was_fallback

    def test_vdso_cache_hits_are_charged_too(self):
        service, admission, client = self.make_client(
            TenantQuota(predict_budget=2), transport="vdso"
        )
        client.predict([1])
        client.predict([1])  # served from the score cache, still charged
        assert admission.usage_for(OWNER).predictions == 2
        assert client.predict([1]) == -7
        assert client.stats.quota_rejections == 1

    def test_syscall_update_over_budget_is_dropped(self):
        service, admission, client = self.make_client(
            TenantQuota(update_budget=2)
        )
        for i in range(5):
            client.update([i], True)
        assert client.stats.dropped_updates == 3
        assert client.stats.quota_rejections == 3
        assert client.stats.retries == 0
        assert client.breaker_state == "closed"
        assert service.domain("d").stats.updates == 2

    def test_vdso_flush_drops_the_over_budget_suffix(self):
        service, admission, client = self.make_client(
            TenantQuota(update_budget=2), transport="vdso", batch_size=16
        )
        for i in range(5):
            client.update([i], True)  # buffered; charged at delivery
        client.flush()
        # Budgets are monotonic: once record 3 is refused, the remaining
        # suffix of the batch is dropped with it.
        assert service.domain("d").stats.updates == 2
        assert client.stats.dropped_updates == 3
        assert client.stats.quota_rejections == 1
        assert client.breaker_state == "closed"
        assert admission.usage_for(OWNER).updates == 2

    def test_usage_rows_report_consumption(self):
        service, admission, client = self.make_client(
            TenantQuota(predict_budget=3)
        )
        for i in range(5):
            client.predict([i])
        ((identity, usage, quota),) = admission.usage_rows()
        assert identity == OWNER
        assert usage.predictions == 3
        assert usage.rejections == 2
        assert quota.predict_budget == 3
