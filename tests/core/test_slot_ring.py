"""Property tests for the slot-ring placement scheme.

The ring's contract is *minimal movement*: a reshard relocates only
the slots it must — growing k -> k+1 moves at most ceil(slots/(k+1))
slots and never remaps a slot whose owner survives with capacity to
spare; shrinking moves exactly the doomed shards' slots.  Placement
itself is a pure function of the domain name, so routing is stable
across processes and reshard plans are deterministic.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.core.kernel.sharding import (
    DEFAULT_SLOTS,
    ShardRouter,
    SlotRing,
)


class TestRingBasics:
    def test_fresh_assignment_is_balanced_modulo(self):
        ring = SlotRing(4, num_slots=64)
        for slot in range(64):
            assert ring.owner_of(slot) == slot % 4
        for shard in range(4):
            assert len(ring.slots_of(shard)) == 16

    def test_slot_of_is_stable_and_in_range(self):
        ring = SlotRing(3)
        for name in ("hle-genome", "jit-atax", "reclaim", ""):
            slot = ring.slot_of(name)
            assert 0 <= slot < DEFAULT_SLOTS
            assert ring.slot_of(name) == slot

    def test_shard_of_matches_owner_of_slot(self):
        ring = SlotRing(5)
        for i in range(50):
            name = f"domain-{i}"
            assert ring.shard_of(name) == ring.owner_of(
                ring.slot_of(name)
            )

    def test_router_single_shard_shortcut(self):
        router = ShardRouter(1)
        assert all(router.shard_of(f"d{i}") == 0 for i in range(20))

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            SlotRing(0)
        with pytest.raises(ConfigError):
            SlotRing(2, num_slots=0)
        with pytest.raises(ConfigError):
            SlotRing(3, num_slots=2)  # fewer slots than shards


class TestReshardPlans:
    @given(old=st.integers(1, 12), slots=st.sampled_from([16, 64, 128]))
    @settings(max_examples=60, deadline=None)
    def test_grow_by_one_is_minimal_movement(self, old, slots):
        if slots < old + 1:
            return
        ring = SlotRing(old, num_slots=slots)
        before = {slot: ring.owner_of(slot) for slot in range(slots)}
        moves = ring.plan_reshard(old + 1)
        # Bound: at most ceil(slots / (k+1)) slots relocate.
        assert len(moves) <= math.ceil(slots / (old + 1))
        targets = [divmod(slots, old + 1)[0]] * (old + 1)
        for shard in range(slots % (old + 1)):
            targets[shard] += 1
        sizes = {
            shard: len(ring.slots_of(shard)) for shard in range(old)
        }
        for move in moves:
            # Every move feeds the new shard, from a surviving donor
            # that still meets its own target after donating.
            assert move.dest == old
            assert move.source == before[move.slot]
            sizes[move.source] -= 1
            assert sizes[move.source] >= targets[move.source]

    @given(old=st.integers(1, 10), new=st.integers(1, 10),
           slots=st.sampled_from([32, 64]))
    @settings(max_examples=80, deadline=None)
    def test_surviving_slots_never_remapped(self, old, new, slots):
        if max(old, new) > slots:
            return
        ring = SlotRing(old, num_slots=slots)
        before = {slot: ring.owner_of(slot) for slot in range(slots)}
        moves = ring.plan_reshard(new)
        for move in moves:
            if new > old:
                # Growing: moves only feed the brand-new shards.
                assert move.dest >= old
            else:
                # Shrinking: only doomed shards' slots move.
                assert move.source >= new
        moved = {move.slot for move in moves}
        for slot in range(slots):
            if slot not in moved:
                # An unmoved slot keeps an owner that survives.
                assert before[slot] < min(old, new)

    @given(old=st.integers(2, 10), slots=st.sampled_from([32, 64]))
    @settings(max_examples=60, deadline=None)
    def test_shrink_moves_exactly_doomed_slots(self, old, slots):
        new = old - 1
        ring = SlotRing(old, num_slots=slots)
        doomed = set(ring.slots_of(old - 1))
        moves = ring.plan_reshard(new)
        assert {move.slot for move in moves} == doomed
        for move in moves:
            assert move.source == old - 1
            assert 0 <= move.dest < new

    @given(old=st.integers(1, 8), new=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_plans_are_deterministic(self, old, new):
        first = SlotRing(old).plan_reshard(new)
        second = SlotRing(old).plan_reshard(new)
        assert first == second

    def test_noop_plan_is_empty(self):
        ring = SlotRing(4)
        assert ring.plan_reshard(4) == []


class TestApply:
    def test_apply_commits_one_slot(self):
        ring = SlotRing(2, num_slots=16)
        move = ring.plan_reshard(3)[0]
        assert ring.owner_of(move.slot) == move.source
        ring.apply(move)
        assert ring.owner_of(move.slot) == move.dest

    def test_apply_rejects_stale_move(self):
        ring = SlotRing(2, num_slots=16)
        move = ring.plan_reshard(3)[0]
        ring.apply(move)
        with pytest.raises(ConfigError):
            ring.apply(move)  # owner already flipped

    def test_set_num_shards_rejects_orphans(self):
        ring = SlotRing(4, num_slots=16)
        with pytest.raises(ConfigError):
            ring.set_num_shards(2)  # shards 2 and 3 still own slots

    def test_full_grow_plan_reaches_balance(self):
        ring = SlotRing(2, num_slots=64)
        for move in ring.plan_reshard(4):
            ring.apply(move)
        ring.set_num_shards(4)
        sizes = sorted(len(ring.slots_of(s)) for s in range(4))
        assert sizes == [16, 16, 16, 16]
