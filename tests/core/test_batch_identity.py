"""Property tests: ``predict_batch`` is bit-identical to scalar predicts.

The PRETZEL-style batched/specialized fast path (``WeightMatrix
.dot_batch`` + :mod:`repro.core.plans`) claims *bit identity*: for any
workload, ``predict_batch(rows) == [predict(r) for r in rows]`` - not
just for scores but for every observable the stack exposes (prediction
stats, index- and score-cache counters, cache contents and eviction
order, weight generations).  These properties pin that claim across:

* the raw :class:`~repro.core.weights.WeightMatrix` (vectorized and
  compiled-fallback block paths, interleaved with training);
* vDSO and syscall clients against 1/2/4-shard services, with tracing
  enabled;
* fault injection (stale vDSO reads consume one die per read either
  way);
* shard crash failover and live resharding;
* checkpoint save/restore (plan bindings drop and re-bind);
* plan sharing: same-shape tenants reuse one compiled plan instance and
  diverge after a shape change.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionService, PSSConfig
from repro.core.kernel import ShardedCheckpointManager
from repro.core.plans import plan_signature
from repro.core.weights import WeightMatrix

from tests.core.reference_impl import ReferenceWeightMatrix


def configs():
    return st.builds(
        PSSConfig,
        num_features=st.integers(1, 3),
        entries_per_feature=st.sampled_from([2, 16, 24]),
        weight_bits=st.integers(2, 8),
        threshold=st.integers(-2, 2),
        seed=st.integers(0, 3),
    )


def matrix_workloads():
    """A config, a vector pool, and a batched/scalar op stream."""
    return configs().flatmap(
        lambda config: st.tuples(
            st.just(config),
            st.lists(
                st.lists(
                    st.integers(-(2 ** 80), 2 ** 80),
                    min_size=config.num_features,
                    max_size=config.num_features,
                ).map(tuple),
                min_size=1, max_size=8, unique=True,
            ),
            st.lists(
                st.tuples(
                    st.sampled_from(
                        ["dot", "batch", "adjust", "reset"]
                    ),
                    st.lists(st.integers(0, 7), max_size=12),
                ),
                max_size=30,
            ),
        )
    )


def drive_matrix(matrix, pool, stream, scores, scalar_only):
    for op, picks in stream:
        rows = [pool[i % len(pool)] for i in picks] or [pool[0]]
        if op == "dot":
            scores.extend(matrix.dot(row) for row in rows)
        elif op == "batch":
            if scalar_only:
                scores.extend(matrix.dot(row) for row in rows)
            else:
                scores.extend(matrix.dot_batch(rows))
        elif op == "adjust":
            matrix.adjust(rows[0], 1)
        else:
            matrix.reset_entry(rows[0])


def matrix_state(matrix):
    return {
        "hits": matrix.index_cache_hits,
        "misses": matrix.index_cache_misses,
        "cache": list(matrix._index_cache.items()),
        "generation": matrix.generation,
        "weights": list(matrix.iter_weights()),
    }


class TestWeightMatrixBatchIdentity:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_batch_equals_scalar_and_reference(self, data):
        config, pool, stream = data.draw(matrix_workloads())
        batched, scalar = WeightMatrix(config), WeightMatrix(config)
        reference = ReferenceWeightMatrix(config)
        b_scores, s_scores, r_scores = [], [], []
        drive_matrix(batched, pool, stream, b_scores, scalar_only=False)
        drive_matrix(scalar, pool, stream, s_scores, scalar_only=True)
        drive_matrix(reference, pool, stream, r_scores, scalar_only=True)
        assert b_scores == s_scores == r_scores
        assert matrix_state(batched) == matrix_state(scalar)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_compiled_fallback_path_identical(self, data):
        """Force the pure-Python block path (what CI without numpy runs)."""
        config, pool, stream = data.draw(matrix_workloads())

        class Fallback(WeightMatrix):
            VECTOR_MIN_ROWS = 10 ** 9  # never vectorize

        batched, scalar = Fallback(config), WeightMatrix(config)
        b_scores, s_scores = [], []
        drive_matrix(batched, pool, stream, b_scores, scalar_only=False)
        drive_matrix(scalar, pool, stream, s_scores, scalar_only=True)
        assert b_scores == s_scores
        assert matrix_state(batched) == matrix_state(scalar)

    def test_eviction_sequence_identical_under_thrash(self):
        class Tiny(WeightMatrix):
            INDEX_CACHE_ENTRIES = 3

        config = PSSConfig(num_features=2)
        batched, scalar = Tiny(config), Tiny(config)
        pool = [(i, i + 1) for i in range(6)]
        batch = [pool[i % 6] for i in (0, 1, 2, 3, 0, 4, 1, 1, 5, 0)]
        assert batched.dot_batch(batch) == [scalar.dot(r) for r in batch]
        assert matrix_state(batched) == matrix_state(scalar)


def service_workloads():
    """Config, pool, and a client op stream for one domain."""
    return configs().flatmap(
        lambda config: st.tuples(
            st.just(config),
            st.lists(
                st.lists(
                    st.integers(-1_000_000, 1_000_000),
                    min_size=config.num_features,
                    max_size=config.num_features,
                ).map(tuple),
                min_size=1, max_size=6, unique=True,
            ),
            st.lists(
                st.tuples(
                    st.sampled_from(["predict", "batch", "update"]),
                    st.lists(st.integers(0, 5), max_size=10),
                    st.booleans(),
                ),
                max_size=40,
            ),
        )
    )


def build_service(config, num_shards, tracer=None):
    from repro.obs import Tracer

    service = PredictionService(
        tracer=tracer or Tracer(), num_shards=num_shards
    )
    service.create_domain("dom", config=config)
    return service


def drive_client(client, pool, stream, scores, scalar_only):
    for op, picks, flag in stream:
        rows = [pool[i % len(pool)] for i in picks] or [pool[0]]
        if op == "predict":
            scores.extend(client.predict(row) for row in rows)
        elif op == "batch":
            if scalar_only:
                scores.extend(client.predict(row) for row in rows)
            else:
                scores.extend(client.predict_batch(rows))
        else:
            client.update(rows[0], flag)
    client.flush()


def service_state(service, client):
    domain = service.domain("dom")
    return {
        "stats": domain.stats,
        "generation": domain.generation,
        "account": (client.latency.cache_hits,
                    client.latency.cache_misses,
                    client.latency.vdso_calls),
    }


class TestClientBatchIdentity:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data(),
           num_shards=st.sampled_from([1, 2, 4]),
           transport=st.sampled_from(["vdso", "syscall"]))
    def test_scores_stats_generations_identical(self, data, num_shards,
                                                transport):
        config, pool, stream = data.draw(service_workloads())
        svc_b = build_service(config, num_shards)
        svc_s = build_service(config, num_shards)
        client_b = svc_b.connect("dom", transport=transport)
        client_s = svc_s.connect("dom", transport=transport)
        b_scores, s_scores = [], []
        drive_client(client_b, pool, stream, b_scores, scalar_only=False)
        drive_client(client_s, pool, stream, s_scores, scalar_only=True)
        assert b_scores == s_scores
        state_b = service_state(svc_b, client_b)
        state_s = service_state(svc_s, client_s)
        assert state_b["stats"] == state_s["stats"]
        assert state_b["generation"] == state_s["generation"]
        if transport == "vdso":
            # Score-cache accounting is part of the identity too.
            assert state_b["account"] == state_s["account"]

    @settings(max_examples=15, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 5))
    def test_identity_under_stale_read_injection(self, data, seed):
        """Stale-vDSO dice roll once per read on both paths."""
        config, pool, stream = data.draw(service_workloads())
        plan = {"seed": seed, "stale_read_rate": 0.4}
        svc_b = build_service(config, 2)
        svc_s = build_service(config, 2)
        client_b = svc_b.connect("dom", fault_plan=dict(plan))
        client_s = svc_s.connect("dom", fault_plan=dict(plan))
        b_scores, s_scores = [], []
        drive_client(client_b, pool, stream, b_scores, scalar_only=False)
        drive_client(client_s, pool, stream, s_scores, scalar_only=True)
        assert b_scores == s_scores
        assert service_state(svc_b, client_b)["stats"] == \
            service_state(svc_s, client_s)["stats"]

    def test_identity_across_crash_failover(self):
        config = PSSConfig(num_features=2)
        services = []
        for _ in range(2):
            service = PredictionService(num_shards=2, num_replicas=1)
            service.create_domain("dom", config=config)
            pool = [(i, -i) for i in range(5)]
            for row in pool:
                service.update("dom", row, True)
            service.sync_replicas()
            service.crash_shard(service.shard_of("dom"))
            services.append((service, pool))
        (svc_b, pool), (svc_s, _) = services
        rows = [pool[i % 5] for i in range(12)]
        batch = svc_b.handle("dom").predict_batch(rows)
        scalar = [svc_s.handle("dom").predict(row) for row in rows]
        assert batch == scalar
        assert svc_b.domain("dom").stats == svc_s.domain("dom").stats

    def test_identity_across_reshard(self):
        config = PSSConfig(num_features=2)
        pool = [(i, i * 3) for i in range(6)]

        def run(batched):
            service = PredictionService(num_shards=2)
            service.create_domain("dom", config=config)
            for row in pool[:4]:
                service.update("dom", row, True)
            service.reshard(4)
            rows = [pool[i % 6] for i in range(10)]
            if batched:
                scores = service.predict_batch(
                    [("dom", row) for row in rows]
                )
            else:
                scores = [service.predict("dom", row) for row in rows]
            return scores, service.domain("dom").stats, \
                service.domain("dom").generation

        assert run(batched=True) == run(batched=False)

    def test_identity_across_checkpoint_save_restore(self, tmp_path):
        config = PSSConfig(num_features=2)

        def run(batched):
            service = PredictionService(num_shards=2)
            service.create_domain("dom", config=config)
            pool = [(i, 7 - i) for i in range(5)]
            for row in pool:
                service.update("dom", row, True)
            manager = ShardedCheckpointManager(
                service, tmp_path / ("b" if batched else "s")
            )
            manager.checkpoint()
            restored = PredictionService(num_shards=2)
            manager_r = ShardedCheckpointManager(
                restored, tmp_path / ("b" if batched else "s")
            )
            manager_r.recover()
            rows = [pool[i % 5] for i in range(12)]
            if batched:
                scores = restored.predict_batch(
                    [("dom", row) for row in rows]
                )
            else:
                scores = [restored.predict("dom", row) for row in rows]
            return scores, restored.domain("dom").generation

        assert run(batched=True) == run(batched=False)


class TestPlanSharing:
    def test_same_shape_tenants_share_one_plan(self):
        config = PSSConfig(num_features=2, entries_per_feature=16)
        service = PredictionService(num_shards=2)
        service.create_domain("tenant-a", config=config)
        service.create_domain("tenant-b", config=config)
        plan_a = service.domain("tenant-a").model.weights.plan
        plan_b = service.domain("tenant-b").model.weights.plan
        assert plan_a is plan_b
        stats = service.plans.stats()
        assert stats == {"plans": 1, "hits": 1, "misses": 1}

    def test_shape_change_diverges(self):
        service = PredictionService()
        service.create_domain(
            "a", config=PSSConfig(num_features=2, entries_per_feature=16)
        )
        service.create_domain(
            "b", config=PSSConfig(num_features=2, entries_per_feature=32)
        )
        plan_a = service.domain("a").model.weights.plan
        plan_b = service.domain("b").model.weights.plan
        assert plan_a is not plan_b
        assert plan_a.signature != plan_b.signature
        assert service.plans.stats()["plans"] == 2

    def test_restore_rebinds_without_recompiling(self):
        config = PSSConfig(num_features=2)
        service = PredictionService()
        service.create_domain("dom", config=config)
        weights = service.domain("dom").model.weights
        original = weights.plan
        state = weights.to_state()
        weights.load_state(state)
        assert weights._plan is None  # binding dropped with the swap
        # Lazy re-bind resolves to a same-signature shared plan.
        assert plan_signature(config) == weights.plan.signature

    def test_plan_stats_surface_in_shard_summaries(self):
        service = PredictionService(num_shards=2)
        service.create_domain("dom", config=PSSConfig(num_features=2))
        summaries = service.shard_summaries()
        assert any("plans" in summary for summary in summaries)
        cache = next(s["plan_cache"] for s in summaries
                     if "plan_cache" in s)
        assert cache["plans"] >= 1

    def test_plan_trace_kinds_emitted(self):
        from repro.obs import Tracer

        tracer = Tracer()
        config = PSSConfig(num_features=2)
        service = PredictionService(tracer=tracer, num_shards=1)
        service.create_domain("a", config=config)
        service.create_domain("b", config=config)
        kinds = [event.kind for event in tracer.events()
                 if event.kind.startswith("plan.")]
        assert kinds == ["plan.compile", "plan.hit"]
