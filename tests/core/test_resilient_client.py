"""Tests for the retry / circuit-breaker / fallback client layer."""

import pytest

from repro.core import (
    FaultInjector,
    FaultPlan,
    PredictionService,
    PSSConfig,
    ResilienceConfig,
    ResilientClient,
    TransportFault,
)
from repro.core.client import CircuitBreaker
from repro.core.errors import ConfigError


def make_client(transport="syscall", resilience=None, fallback=1,
                plan=None, **connect_kwargs):
    service = PredictionService()
    client = service.connect(
        "dom",
        config=PSSConfig(num_features=2),
        transport=transport,
        resilience=resilience or ResilienceConfig(),
        fallback=fallback,
        fault_plan=plan,
        **connect_kwargs,
    )
    return service, client


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ConfigError):
            ResilienceConfig(breaker_threshold=0)
        with pytest.raises(ConfigError):
            ResilienceConfig(backoff_multiplier=0.5)

    def test_connect_builds_resilient_client(self):
        _, client = make_client()
        assert isinstance(client, ResilientClient)

    def test_plain_connect_stays_plain(self):
        service = PredictionService()
        client = service.connect("dom")
        assert not isinstance(client, ResilientClient)


class TestRetry:
    def test_transient_fault_retried_and_absorbed(self):
        # Rate 0.5 with bounded attempts: most predicts succeed on a
        # retry; none may raise.
        _, client = make_client(
            plan=FaultPlan(seed=3, syscall_failure_rate=0.5),
            resilience=ResilienceConfig(max_attempts=4,
                                        breaker_threshold=1000),
        )
        for i in range(300):
            client.predict([i % 4, 1])
        assert client.stats.retries > 0
        assert client.stats.backoff_ns > 0
        # With 4 attempts at rate 0.5 almost everything goes through.
        assert client.stats.fallback_predictions < 30

    def test_backoff_grows_exponentially(self):
        config = ResilienceConfig(max_attempts=3, backoff_base_ns=100.0,
                                  backoff_multiplier=2.0)
        _, client = make_client(
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
            resilience=config,
        )
        client.predict([1, 2])  # fails all 3 attempts -> 2 backoffs
        assert client.stats.backoff_ns == pytest.approx(100.0 + 200.0)


class TestCircuitBreaker:
    def failing_client(self, threshold=3, cooldown=4):
        return make_client(
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
            resilience=ResilienceConfig(max_attempts=1,
                                        breaker_threshold=threshold,
                                        breaker_cooldown=cooldown),
        )

    def test_opens_after_consecutive_failures(self):
        _, client = self.failing_client(threshold=3)
        for i in range(3):
            client.predict([1, 2])
        assert client.breaker_state == CircuitBreaker.OPEN
        assert client.stats.breaker_opens == 1

    def test_open_breaker_serves_fallback_without_transport(self):
        _, client = self.failing_client(threshold=2, cooldown=100)
        client.predict([1, 2])
        client.predict([1, 2])
        syscalls_when_opened = client.latency.syscalls
        score = client.predict([1, 2])
        assert score == 1  # the static fallback
        assert client.last_prediction_was_fallback
        assert client.latency.syscalls == syscalls_when_opened

    def test_half_open_probe_reopens_when_still_failing(self):
        _, client = self.failing_client(threshold=2, cooldown=3)
        for i in range(20):
            client.predict([1, 2])
        # Still injecting at rate 1.0: every probe fails, breaker
        # reopens every cooldown window.
        assert client.breaker_state == CircuitBreaker.OPEN
        assert client.stats.breaker_opens > 1
        assert client.stats.breaker_closes == 0

    def test_recovers_when_transport_heals(self):
        _, client = self.failing_client(threshold=2, cooldown=3)
        client.predict([1, 2])
        client.predict([1, 2])
        assert client.breaker_state == CircuitBreaker.OPEN
        client.attach_fault_injector(None)  # the transport healed
        for i in range(6):
            client.predict([1, 2])
        assert client.breaker_state == CircuitBreaker.CLOSED
        assert client.stats.breaker_closes == 1
        assert not client.last_prediction_was_fallback

    def test_open_breaker_drops_updates_and_resets(self):
        _, client = self.failing_client(threshold=1, cooldown=1000)
        client.predict([1, 2])
        assert client.breaker_state == CircuitBreaker.OPEN
        client.update([1, 2], True)
        client.reset([1, 2])
        assert client.stats.dropped_updates >= 1
        assert client.stats.dropped_resets == 1


class TestFallback:
    def test_constant_fallback(self):
        _, client = make_client(
            fallback=7,
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
            resilience=ResilienceConfig(max_attempts=1,
                                        breaker_threshold=1),
        )
        assert client.predict([1, 2]) == 7

    def test_callable_fallback_sees_features(self):
        _, client = make_client(
            fallback=lambda features: -1 if features[0] >= 8 else 1,
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
            resilience=ResilienceConfig(max_attempts=1,
                                        breaker_threshold=1),
        )
        assert client.predict([9, 0]) == -1
        assert client.predict([1, 0]) == 1

    def test_degraded_fraction_reported(self):
        _, client = make_client(
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
            resilience=ResilienceConfig(max_attempts=1,
                                        breaker_threshold=1,
                                        breaker_cooldown=1000),
        )
        for i in range(10):
            client.predict([1, 2])
        assert client.stats.degraded_fraction > 0.8


class TestNoExceptionGuarantee:
    @pytest.mark.parametrize("transport", ["vdso", "syscall"])
    def test_no_fault_escapes_at_half_rate(self, transport):
        _, client = make_client(
            transport=transport,
            plan=FaultPlan.uniform(0.5, seed=9),
        )
        for i in range(500):
            client.predict([i % 8, 1])
            client.update([i % 8, 1], i % 3 == 0)
            if i % 100 == 99:
                client.reset([i % 8, 1])
        client.flush()
        client.close()  # none of the above may raise

    def test_plain_client_with_plan_does_raise(self):
        # The contrast: without the resilient layer, injected faults
        # reach the caller.
        service = PredictionService()
        client = service.connect(
            "dom", transport="syscall",
            fault_plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
        )
        with pytest.raises(TransportFault):
            client.predict([1, 2])

    def test_close_never_raises(self):
        _, client = make_client(
            transport="vdso",
            plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
        )
        client._transport._buffer.add([1], True)
        client.close()


class TestZeroRateTransparency:
    @pytest.mark.parametrize("transport", ["vdso", "syscall"])
    def test_identical_results_and_latency_at_rate_zero(self, transport):
        def run(resilient):
            service = PredictionService()
            kwargs = {}
            if resilient:
                kwargs = dict(resilience=ResilienceConfig(),
                              fault_plan=FaultPlan.uniform(0.0, seed=4))
            client = service.connect(
                "dom", config=PSSConfig(num_features=2),
                transport=transport, **kwargs,
            )
            scores = []
            for i in range(200):
                scores.append(client.predict([i % 8, 1]))
                client.update([i % 8, 1], i % 2 == 0)
            client.flush()
            return scores, client.latency.snapshot()

        plain_scores, plain_latency = run(resilient=False)
        res_scores, res_latency = run(resilient=True)
        assert res_scores == plain_scores
        assert res_latency == plain_latency

    def test_injector_rng_does_not_touch_global_random(self):
        import random
        random.seed(123)
        expected = [random.random() for _ in range(5)]
        random.seed(123)
        injector = FaultInjector(FaultPlan.uniform(0.5, seed=7))
        for _ in range(50):
            injector.syscall_fault()
            injector.stale_read()
        assert [random.random() for _ in range(5)] == expected
