"""Histogram percentile math and registry get-or-create semantics."""

import random

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.exporters import prometheus_text


class TestHistogramPercentiles:
    def test_empty_histogram_reports_zeros(self):
        h = Histogram()
        assert h.percentile(0.5) == 0.0
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["p99"] == 0.0

    def test_single_sample_is_exact_at_every_quantile(self):
        h = Histogram()
        h.observe(4.19)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.percentile(q) == pytest.approx(4.19)
        assert h.mean == pytest.approx(4.19)

    def test_constant_stream_is_exact(self):
        h = Histogram()
        for _ in range(1000):
            h.observe(68.0)
        assert h.p50 == pytest.approx(68.0)
        assert h.p99 == pytest.approx(68.0)

    def test_zero_observations_live_in_zero_bucket(self):
        h = Histogram()
        for _ in range(10):
            h.observe(0.0)
        h.observe(8.0)
        assert h.zero_count == 10
        assert h.p50 == 0.0
        assert h.percentile(1.0) == pytest.approx(8.0)

    def test_estimates_within_one_bucket_of_truth(self):
        rng = random.Random(7)
        samples = [rng.uniform(0.5, 500.0) for _ in range(5000)]
        h = Histogram()
        for s in samples:
            h.observe(s)
        samples.sort()
        for q in (0.5, 0.9, 0.99):
            true = samples[int(q * (len(samples) - 1))]
            estimate = h.percentile(q)
            # Power-of-2 buckets: estimate within 2x either way.
            assert true / 2 <= estimate <= true * 2

    def test_percentiles_monotonic_in_q(self):
        rng = random.Random(3)
        h = Histogram()
        for _ in range(300):
            h.observe(rng.expovariate(1 / 50.0))
        quantiles = [h.percentile(q / 20) for q in range(21)]
        assert quantiles == sorted(quantiles)

    def test_estimates_clamped_to_observed_range(self):
        h = Histogram()
        h.observe(5.0)
        h.observe(5.5)
        for q in (0.0, 0.25, 0.75, 1.0):
            assert 5.0 <= h.percentile(q) <= 5.5

    def test_invalid_quantile_rejected(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_power_of_two_boundary_bucketing(self):
        # Exactly 2**n must land in the (2**(n-1), 2**n] bucket.
        h = Histogram()
        h.observe(8.0)
        assert h.buckets == {3: 1}

    def test_merge_combines_distributions(self):
        a, b = Histogram(), Histogram()
        for _ in range(100):
            a.observe(4.19)
        for _ in range(100):
            b.observe(68.0)
        a.merge(b)
        assert a.count == 200
        assert a.min == pytest.approx(4.19)
        assert a.max == pytest.approx(68.0)
        assert a.p50 < 10.0  # half the mass is at 4.19
        assert a.p99 > 60.0

    def test_merge_empty_into_empty(self):
        a, b = Histogram(), Histogram()
        a.merge(b)
        assert a.count == 0
        assert a.percentile(0.5) == 0.0
        snap = a.snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_merge_empty_and_nonempty_both_orders(self):
        empty, full = Histogram(), Histogram()
        for value in (1.0, 4.19, 68.0):
            full.observe(value)
        before = full.snapshot()
        full.merge(empty)  # nonempty <- empty: a no-op
        assert full.snapshot() == before
        empty.merge(full)  # empty <- nonempty: adopts everything
        assert empty.snapshot() == before
        assert empty.min == pytest.approx(1.0)
        assert empty.max == pytest.approx(68.0)

    def test_merge_rejects_foreign_bucket_schemes(self):
        h = Histogram()
        h.observe(4.19)

        class FixedBucketHistogram:
            count = 1
            sum = 4.0
            min = 4.0
            max = 4.0
            zero_count = 0
            buckets = {0.5: 1}  # boundary-keyed, not exponent-keyed

        with pytest.raises(TypeError, match="log-bucketed Histogram"):
            h.merge(FixedBucketHistogram())
        with pytest.raises(TypeError):
            h.merge({"count": 1})
        assert h.count == 1  # rejected merges leave the target intact

    def test_merge_preserves_percentile_monotonicity(self):
        a, b = Histogram(), Histogram()
        rng = random.Random(7)
        for _ in range(200):
            a.observe(rng.uniform(0.0, 100.0))
        for _ in range(50):
            b.observe(rng.uniform(1000.0, 2000.0))
        a.merge(b)
        quantiles = [i / 20 for i in range(21)]
        estimates = [a.percentile(q) for q in quantiles]
        assert estimates == sorted(estimates)
        assert a.count == 250


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.histogram("lat", domain="d", transport="vdso")
        b = reg.histogram("lat", transport="vdso", domain="d")
        assert a is b
        assert reg.counter("hits") is reg.counter("hits")
        assert reg.gauge("depth") is reg.gauge("depth")

    def test_label_values_distinguish_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("c", domain="a") is not \
            reg.counter("c", domain="b")

    def test_counter_and_gauge_arithmetic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = Gauge()
        g.set(3.0)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(3.5)

    def test_merged_histogram_filters_by_label_subset(self):
        reg = MetricsRegistry()
        reg.histogram("lat", domain="d", transport="vdso").observe(4.0)
        reg.histogram("lat", domain="d", transport="syscall").observe(68.0)
        reg.histogram("lat", domain="other", transport="vdso").observe(1.0)
        merged = reg.merged_histogram("lat", domain="d")
        assert merged.count == 2
        assert merged.max == pytest.approx(68.0)

    def test_merged_histogram_with_no_matches_is_empty(self):
        reg = MetricsRegistry()
        reg.histogram("lat", domain="d").observe(4.0)
        merged = reg.merged_histogram("lat", domain="missing")
        assert merged.count == 0
        assert merged.percentile(0.99) == 0.0

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.counter("hits", domain="d").inc(3)
        reg.gauge("depth").set(2.0)
        reg.histogram("lat", domain="d").observe(4.19)
        dump = json.loads(json.dumps(reg.snapshot()))
        assert dump["counters"][0]["value"] == 3
        assert dump["histograms"][0]["count"] == 1

    def test_prometheus_text_has_types_and_buckets(self):
        reg = MetricsRegistry()
        reg.counter("pss_hits_total", domain="d").inc(2)
        h = reg.histogram("pss_lat_ns", domain="d")
        h.observe(4.0)
        h.observe(60.0)
        text = prometheus_text(reg)
        assert "# TYPE pss_hits_total counter" in text
        assert 'pss_hits_total{domain="d"} 2' in text
        assert "# TYPE pss_lat_ns histogram" in text
        assert 'le="+Inf"' in text
        assert "pss_lat_ns_count" in text
        assert "pss_lat_ns_sum" in text

    def test_prometheus_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 3.0, 60.0):
            h.observe(v)
        lines = [ln for ln in prometheus_text(reg).splitlines()
                 if "_bucket" in ln]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
