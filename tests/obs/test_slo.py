"""SLO engine: windows, burn rates, verdicts, paging, advisory hooks."""

import pytest

from repro.core.kernel.admission import AdmissionController
from repro.obs import SLO, SLOEngine, SLOVerdict, Tracer, default_slos
from repro.obs.trace import TraceEvent


def event(kind, ts_ns, dur_ns=0.0, domain="d", shard="",
          detail=None):
    return TraceEvent(kind=kind, ts_ns=ts_ns, domain=domain,
                      transport="t", dur_ns=dur_ns, generation=0,
                      detail=detail, shard=shard, span_id=0)


class TestSLODeclaration:
    def test_rejects_bad_kind_objective_and_windows(self):
        with pytest.raises(ValueError, match="unknown SLO kind"):
            SLO("x", "availability")
        with pytest.raises(ValueError, match="objective"):
            SLO("x", "latency", objective=1.0)
        with pytest.raises(ValueError, match="windows"):
            SLO("x", "latency", short_window_ns=50.0,
                long_window_ns=10.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([SLO("same", "error"), SLO("same", "latency")])

    def test_scope_matching(self):
        everything = SLO("a", "error", scope="*")
        tenant = SLO("b", "error", scope="d")
        shard = SLO("c", "error", scope="shard:2")
        e = event("predict", 1.0, domain="d", shard="2")
        assert everything.matches(e)
        assert tenant.matches(e)
        assert shard.matches(e)
        assert not SLO("d", "error", scope="other").matches(e)
        assert not SLO("e", "error", scope="shard:0").matches(e)

    def test_default_slos_cover_three_kinds(self):
        kinds = {slo.kind for slo in default_slos()}
        assert kinds == {"latency", "error", "staleness"}


class TestClassification:
    def test_latency_slo_times_selected_ops(self):
        engine = SLOEngine([SLO("lat", "latency", threshold_ns=100.0)])
        engine.consume([
            event("predict", 1.0, dur_ns=4.19),    # good
            event("predict", 2.0, dur_ns=500.0),   # bad
            event("cache_hit", 3.0, dur_ns=999.0),  # not an op: ignored
        ])
        verdict, = engine.evaluate()
        assert (verdict.good, verdict.bad) == (1, 1)

    def test_error_slo_counts_faults_against_ops(self):
        engine = SLOEngine([SLO("err", "error", objective=0.5)])
        engine.consume([
            event("predict", 1.0),
            event("fault", 2.0),
            event("update", 3.0),
        ])
        verdict, = engine.evaluate()
        assert (verdict.good, verdict.bad) == (2, 1)

    def test_staleness_slo_uses_failover_lag(self):
        engine = SLOEngine([SLO("stale", "staleness", max_lag=2)])
        engine.consume([
            event("failover", 1.0, detail={"lag": 1}),   # within bound
            event("failover", 2.0, detail={"lag": 5}),   # too stale
            event("stale_read", 3.0),                    # always bad
        ])
        verdict, = engine.evaluate()
        assert (verdict.good, verdict.bad) == (1, 2)


class TestBurnAndVerdicts:
    def test_clean_window_is_ok_with_full_budget(self):
        engine = SLOEngine([SLO("lat", "latency", threshold_ns=10.0)])
        for i in range(20):
            engine.observe("lat", float(i), good=True)
        verdict, = engine.evaluate()
        assert verdict.verdict == "ok"
        assert verdict.short_burn == 0.0
        assert verdict.budget_remaining == 1.0

    def test_slow_burn_warns_without_paging(self):
        # 2% bad at a 99% objective: burn 2.0 - over budget pace but
        # not at page speed on both windows.
        slo = SLO("lat", "latency", objective=0.99, threshold_ns=10.0,
                  short_window_ns=10.0, long_window_ns=100.0)
        engine = SLOEngine([slo])
        for i in range(100):
            engine.observe("lat", float(i), good=(i % 50 != 0))
        verdict, = engine.evaluate()
        assert verdict.verdict == "warn"
        assert verdict.long_burn == pytest.approx(2.0)

    def test_fast_burn_on_both_windows_pages_once(self):
        tracer = Tracer()
        slo = SLO("err", "error", objective=0.9,
                  short_window_ns=10.0, long_window_ns=100.0)
        engine = SLOEngine([slo], tracer=tracer)
        for i in range(50):
            engine.observe("err", float(i), good=False)
        first, = engine.evaluate()
        assert first.verdict == "page"
        assert first.budget_remaining == 0.0
        engine.evaluate()  # still paging: same excursion, no new event
        pages = [e for e in tracer.events() if e.kind == "slo.page"]
        assert len(pages) == 1
        assert pages[0].detail["slo"] == "err"
        assert pages[0].detail["short_burn"] >= SLOEngine.PAGE_BURN

    def test_recovery_rearms_the_page(self):
        tracer = Tracer()
        slo = SLO("err", "error", objective=0.9,
                  short_window_ns=10.0, long_window_ns=10.0)
        engine = SLOEngine([slo], tracer=tracer)
        for i in range(10):
            engine.observe("err", float(i), good=False)
        engine.evaluate()  # page #1
        for i in range(10, 40):
            engine.observe("err", float(i), good=True)
        ok, = engine.evaluate()  # bad samples aged out of the window
        assert ok.verdict == "ok"
        for i in range(40, 50):
            engine.observe("err", float(i), good=False)
        engine.evaluate()  # page #2: a new excursion
        pages = [e for e in tracer.events() if e.kind == "slo.page"]
        assert len(pages) == 2

    def test_samples_age_out_of_the_long_window(self):
        slo = SLO("lat", "latency", threshold_ns=10.0,
                  short_window_ns=5.0, long_window_ns=10.0)
        engine = SLOEngine([slo])
        engine.observe("lat", 0.0, good=False)
        engine.observe("lat", 100.0, good=True)
        verdict, = engine.evaluate()
        assert (verdict.good, verdict.bad) == (1, 0)

    def test_verdict_serializes(self):
        verdict = SLOVerdict(slo="a", scope="*", kind="error",
                             verdict="ok", good=1, bad=0,
                             short_burn=0.0, long_burn=0.0,
                             budget_remaining=1.0)
        assert verdict.as_dict()["verdict"] == "ok"


class TestAdvisoryHooks:
    def test_should_shed_scopes(self):
        engine = SLOEngine([
            SLO("shard1", "error", scope="shard:1", objective=0.9,
                short_window_ns=10.0, long_window_ns=10.0),
        ])
        for i in range(10):
            engine.observe("shard1", float(i), good=False)
        assert engine.should_shed(shard="1")
        assert not engine.should_shed(shard="0")
        assert not engine.should_shed(domain="d")

    def test_admission_controller_consults_probe_advisorily(self):
        engine = SLOEngine([SLO("all", "error", objective=0.9,
                                short_window_ns=10.0,
                                long_window_ns=10.0)])
        admission = AdmissionController()
        assert not admission.health_advice(domain="d")  # no probe yet
        admission.set_health_probe(engine)
        assert not admission.health_advice(domain="d")  # healthy
        for i in range(10):
            engine.observe("all", float(i), good=False)
        assert admission.health_advice(domain="d")
        assert admission.shed_advisories == 1
        # advisory only: admission decisions themselves are unchanged
        from repro.core.policy import ClientIdentity
        admission.charge_predict(ClientIdentity(uid=1, program="p"))
