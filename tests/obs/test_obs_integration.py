"""End-to-end observability: traced stack, metrics plumbing, reports."""

import pytest

from repro.core import (
    FaultPlan,
    PredictionService,
    PSSConfig,
    ResilienceConfig,
)
from repro.core.persistence import CheckpointManager
from repro.obs import MetricsRegistry, Tracer
from repro.obs.session import obs_from_args

FEATURES = [3, 5]
CONFIG_KW = dict(num_features=2)


def traced_service(**service_kwargs):
    tracer = Tracer()
    metrics = MetricsRegistry()
    service = PredictionService(tracer=tracer, metrics=metrics,
                                **service_kwargs)
    return service, tracer, metrics


def kinds(tracer):
    return [event.kind for event in tracer.events()]


class TestTransportTracing:
    def test_vdso_predict_traces_event_and_cache_activity(self):
        service, tracer, _ = traced_service()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        client.predict(FEATURES)
        seen = kinds(tracer)
        assert seen.count("predict") == 2
        assert "cache_miss" in seen
        assert "cache_hit" in seen

    def test_syscall_path_traces_updates_and_resets(self):
        service, tracer, _ = traced_service()
        client = service.connect("d", transport="syscall",
                                 config=PSSConfig(**CONFIG_KW))
        client.update(FEATURES, True)
        client.reset(FEATURES, reset_all=True)
        assert "update" in kinds(tracer)
        assert "reset" in kinds(tracer)

    def test_flush_traces_batched_delivery(self):
        service, tracer, _ = traced_service()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW),
                                 batch_size=4)
        for _ in range(3):
            client.update(FEATURES, True)
        client.flush()
        flushes = [e for e in tracer.events() if e.kind == "flush"]
        assert flushes and flushes[-1].detail["records"] == 3

    def test_timestamps_follow_simulated_time(self):
        service, tracer, _ = traced_service()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        client.predict([9, 9])
        predicts = [e for e in tracer.events() if e.kind == "predict"]
        assert predicts[0].ts_ns < predicts[1].ts_ns
        assert predicts[0].ts_ns == pytest.approx(
            client.latency.total_ns - predicts[1].dur_ns, rel=1e-6
        ) or predicts[0].ts_ns < client.latency.total_ns

    def test_disabled_tracer_records_nothing(self):
        service = PredictionService()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        client.update(FEATURES, True)
        client.flush()
        assert len(service.tracer) == 0


class TestMetricsPlumbing:
    def test_latency_histograms_populated_per_transport(self):
        service, _, metrics = traced_service()
        vdso = service.connect("d", config=PSSConfig(**CONFIG_KW))
        syscall = service.connect("d", transport="syscall")
        vdso.predict(FEATURES)
        syscall.predict(FEATURES)
        vh = metrics.merged_histogram("pss_vdso_read_ns", domain="d")
        sh = metrics.merged_histogram("pss_syscall_ns", domain="d")
        assert vh.count == 1
        assert vh.p50 == pytest.approx(4.19)
        assert sh.count == 1
        assert sh.p50 == pytest.approx(68.0)

    def test_cache_counters_mirror_account(self):
        service, _, metrics = traced_service()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        client.predict(FEATURES)
        hits = metrics.counter("pss_score_cache_hits_total",
                               domain="d", transport="vdso")
        assert hits.value == client.latency.cache_hits == 1

    def test_metrics_only_service_works_without_tracer(self):
        metrics = MetricsRegistry()
        service = PredictionService(metrics=metrics)
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        assert metrics.merged_histogram("pss_vdso_read_ns").count == 1


class TestFaultAndResilienceTracing:
    def test_injected_faults_and_retries_traced(self):
        service, tracer, _ = traced_service()
        client = service.connect(
            "d", transport="syscall", config=PSSConfig(**CONFIG_KW),
            resilience=ResilienceConfig(max_attempts=3,
                                        breaker_threshold=1000),
            fallback=1,
            fault_plan=FaultPlan(seed=3, syscall_failure_rate=0.5),
        )
        for _ in range(40):
            client.predict(FEATURES)
        seen = kinds(tracer)
        assert "fault_injected" in seen
        assert "fault" in seen
        assert "retry" in seen

    def test_breaker_transitions_and_fallbacks_traced(self):
        service, tracer, _ = traced_service()
        client = service.connect(
            "d", transport="syscall", config=PSSConfig(**CONFIG_KW),
            resilience=ResilienceConfig(max_attempts=1,
                                        breaker_threshold=2,
                                        breaker_cooldown=3),
            fallback=7,
            fault_plan=FaultPlan(seed=0, syscall_failure_rate=1.0),
        )
        for _ in range(8):
            client.predict(FEATURES)
        seen = kinds(tracer)
        assert "breaker_open" in seen
        assert "fallback" in seen
        reasons = {e.detail["reason"] for e in tracer.events()
                   if e.kind == "fallback"}
        assert "breaker_open" in reasons

    def test_tracing_does_not_perturb_fault_sequence(self):
        def run(tracer_on: bool):
            if tracer_on:
                service, _, _ = traced_service()
            else:
                service = PredictionService()
            client = service.connect(
                "d", transport="syscall", config=PSSConfig(**CONFIG_KW),
                resilience=ResilienceConfig(max_attempts=2,
                                            breaker_threshold=4,
                                            breaker_cooldown=2),
                fallback=1,
                fault_plan=FaultPlan(seed=11, syscall_failure_rate=0.3),
            )
            return [client.predict(FEATURES) for _ in range(60)], \
                client.stats.fallback_predictions

        assert run(True) == run(False)


class TestCheckpointTracing:
    def test_save_and_restore_traced(self, tmp_path):
        service, tracer, _ = traced_service()
        service.create_domain("d", config=PSSConfig(**CONFIG_KW))
        manager = CheckpointManager(service, tmp_path / "ckpt.json",
                                    interval=1)
        manager.checkpoint()
        assert manager.recover()
        saves = [e for e in tracer.events()
                 if e.kind == "checkpoint_save"]
        restores = [e for e in tracer.events()
                    if e.kind == "checkpoint_restore"]
        assert saves and saves[0].detail["corrupted"] is False
        assert restores and restores[0].detail["ok"] is True

    def test_failed_restore_traced(self, tmp_path):
        service, tracer, _ = traced_service()
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        manager = CheckpointManager(service, path)
        assert not manager.recover()
        restores = [e for e in tracer.events()
                    if e.kind == "checkpoint_restore"]
        assert restores and restores[0].detail["ok"] is False


class TestReports:
    def test_reports_carry_percentiles_and_resilience(self):
        service, _, _ = traced_service()
        plain = service.connect("d", config=PSSConfig(**CONFIG_KW))
        plain.predict(FEATURES)
        degradable = service.connect(
            "d", resilience=ResilienceConfig(), fallback=1
        )
        degradable.predict(FEATURES)
        (report,) = service.reports()
        assert "vdso_read_ns" in report.latency_percentiles
        snap = report.latency_percentiles["vdso_read_ns"]
        assert snap["p50"] == pytest.approx(4.19)
        assert report.resilience is not None
        assert report.resilience.predictions == 1

    def test_resilience_stats_shared_across_clients(self):
        service, _, _ = traced_service()
        a = service.connect("d", config=PSSConfig(**CONFIG_KW),
                            resilience=ResilienceConfig(), fallback=1)
        b = service.connect("d", resilience=ResilienceConfig(),
                            fallback=1)
        a.predict(FEATURES)
        b.predict(FEATURES)
        (report,) = service.reports()
        assert report.resilience.predictions == 2

    def test_uninstrumented_reports_stay_bare(self):
        service = PredictionService()
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        (report,) = service.reports()
        assert report.latency_percentiles == {}
        assert report.resilience is None


class TestCliGlue:
    def test_obs_from_args_parses_flags(self):
        session = obs_from_args(["--quick", "--trace", "out.json",
                                 "--metrics"])
        assert session.active
        assert session.tracer.enabled
        assert session.metrics is not None
        assert session.trace_path == "out.json"

    def test_inactive_without_flags(self):
        session = obs_from_args(["--quick"])
        assert not session.active
        assert not session.tracer.enabled
        assert session.metrics is None

    def test_trace_requires_path(self):
        with pytest.raises(SystemExit):
            obs_from_args(["--trace"])

    def test_finish_writes_artifacts(self, tmp_path):
        path = tmp_path / "trace.json"
        session = obs_from_args(["--trace", str(path), "--metrics"])
        service = PredictionService(tracer=session.tracer,
                                    metrics=session.metrics)
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        summary = session.finish()
        assert path.exists()
        assert (tmp_path / "trace.jsonl").exists()
        assert "Prometheus" in summary
        import json

        from repro.obs import validate_chrome_trace

        validate_chrome_trace(json.loads(path.read_text()))

    def test_finish_writes_spans_jsonl(self, tmp_path):
        import json

        from repro.obs import Span

        path = tmp_path / "trace.json"
        session = obs_from_args(["--trace", str(path)])
        service = PredictionService(tracer=session.tracer)
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        summary = session.finish()
        spans_path = tmp_path / "trace.json.spans.jsonl"
        assert spans_path.exists()
        assert "spans ->" in summary
        parsed = [Span.from_dict(json.loads(line))
                  for line in spans_path.read_text().splitlines()]
        assert any(span.name == "client.predict" for span in parsed)

    def test_slo_flag_enables_tracing_and_health_table(self):
        session = obs_from_args(["--slo"])
        assert session.slo
        assert session.tracer.enabled  # implied, even without --trace
        service = PredictionService(tracer=session.tracer)
        client = service.connect("d", config=PSSConfig(**CONFIG_KW))
        client.predict(FEATURES)
        summary = session.finish()
        assert "SLO health" in summary
        assert "predict-latency" in summary
        assert "verdict" in summary

    def test_flight_recorder_flag_builds_recorder(self, tmp_path):
        from repro.obs import FlightRecorder, load_bundle

        session = obs_from_args(["--flight-recorder",
                                 str(tmp_path / "fr"), "--metrics"])
        assert isinstance(session.tracer, FlightRecorder)
        session.tracer.record("shard_crash", shard="1")
        summary = session.finish()
        assert len(session.tracer.bundles) == 1
        assert "post-mortem bundle" in summary
        payload = load_bundle(session.tracer.bundles[0])
        # --metrics attaches the registry to every bundle snapshot
        assert payload["metrics"] is not None

    def test_flight_recorder_requires_directory(self):
        with pytest.raises(SystemExit):
            obs_from_args(["--flight-recorder"])
