"""Exporter round-trips: JSONL, Chrome trace-event JSON, validation."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.record("predict", domain="hle", transport="vdso",
                  ts_ns=4.19, dur_ns=4.19, generation=1)
    tracer.record("cache_hit", domain="hle", transport="vdso",
                  ts_ns=8.38)
    tracer.record("predict", domain="hle", transport="syscall",
                  ts_ns=68.0, dur_ns=68.0)
    tracer.record("fault_injected", transport="injector",
                  detail={"mode": "stale_read"})
    return tracer


class TestJsonl:
    def test_one_parseable_object_per_line(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "events.jsonl"
        count = write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "predict"
        assert parsed[0]["dur_ns"] == 4.19
        assert parsed[3]["detail"] == {"mode": "stale_read"}


class TestChromeTrace:
    def test_valid_and_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_sample_tracer(), path)
        assert count == 4
        data = json.loads(path.read_text())
        validate_chrome_trace(data)

    def test_one_track_per_domain_transport_pair(self):
        data = chrome_trace(_sample_tracer().events())
        names = {
            record["args"]["name"]
            for record in data["traceEvents"]
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert names == {"hle/vdso", "hle/syscall", "injector"}
        # Events on the same track share a tid.
        tids = {
            record["name"]: record["tid"]
            for record in data["traceEvents"] if record["ph"] != "M"
        }
        assert tids["cache_hit"] == [
            r["tid"] for r in data["traceEvents"]
            if r["ph"] != "M" and r.get("args", {}).get("generation") == 1
        ][0]

    def test_durations_become_complete_events(self):
        data = chrome_trace(_sample_tracer().events())
        by_name = {}
        for record in data["traceEvents"]:
            if record["ph"] != "M":
                by_name.setdefault(record["name"], record)
        assert by_name["predict"]["ph"] == "X"
        assert by_name["predict"]["dur"] == pytest.approx(4.19 / 1000)
        assert by_name["cache_hit"]["ph"] == "i"
        assert "dur" not in by_name["cache_hit"]

    def test_timestamps_scaled_to_microseconds(self):
        data = chrome_trace(_sample_tracer().events())
        predict = next(r for r in data["traceEvents"]
                       if r["ph"] == "X")
        assert predict["ts"] == pytest.approx(4.19 / 1000)


class TestValidation:
    def test_rejects_non_object_root(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_record_without_ph(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"pid": 1, "tid": 1, "name": "x"}]}
            )

    def test_rejects_complete_event_without_duration(self):
        record = {"ph": "X", "pid": 1, "tid": 1, "name": "p", "ts": 0.0}
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [record]})

    def test_accepts_emitted_traces(self):
        validate_chrome_trace(chrome_trace(_sample_tracer().events()))
        validate_chrome_trace(chrome_trace([]))
