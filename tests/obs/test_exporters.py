"""Exporter round-trips: JSONL, Chrome trace-event JSON, validation."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.record("predict", domain="hle", transport="vdso",
                  ts_ns=4.19, dur_ns=4.19, generation=1)
    tracer.record("cache_hit", domain="hle", transport="vdso",
                  ts_ns=8.38)
    tracer.record("predict", domain="hle", transport="syscall",
                  ts_ns=68.0, dur_ns=68.0)
    tracer.record("fault_injected", transport="injector",
                  detail={"mode": "stale_read"})
    return tracer


class TestJsonl:
    def test_one_parseable_object_per_line(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "events.jsonl"
        count = write_jsonl(tracer, path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 4
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "predict"
        assert parsed[0]["dur_ns"] == 4.19
        assert parsed[3]["detail"] == {"mode": "stale_read"}


class TestChromeTrace:
    def test_valid_and_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_sample_tracer(), path)
        assert count == 4
        data = json.loads(path.read_text())
        validate_chrome_trace(data)

    def test_one_track_per_domain_transport_pair(self):
        data = chrome_trace(_sample_tracer().events())
        names = {
            record["args"]["name"]
            for record in data["traceEvents"]
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert names == {"hle/vdso", "hle/syscall", "injector"}
        # Events on the same track share a tid.
        tids = {
            record["name"]: record["tid"]
            for record in data["traceEvents"] if record["ph"] != "M"
        }
        assert tids["cache_hit"] == [
            r["tid"] for r in data["traceEvents"]
            if r["ph"] != "M" and r.get("args", {}).get("generation") == 1
        ][0]

    def test_durations_become_complete_events(self):
        data = chrome_trace(_sample_tracer().events())
        by_name = {}
        for record in data["traceEvents"]:
            if record["ph"] != "M":
                by_name.setdefault(record["name"], record)
        assert by_name["predict"]["ph"] == "X"
        assert by_name["predict"]["dur"] == pytest.approx(4.19 / 1000)
        assert by_name["cache_hit"]["ph"] == "i"
        assert "dur" not in by_name["cache_hit"]

    def test_timestamps_scaled_to_microseconds(self):
        data = chrome_trace(_sample_tracer().events())
        predict = next(r for r in data["traceEvents"]
                       if r["ph"] == "X")
        assert predict["ts"] == pytest.approx(4.19 / 1000)


class TestValidation:
    def test_rejects_non_object_root(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_record_without_ph(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"pid": 1, "tid": 1, "name": "x"}]}
            )

    def test_rejects_complete_event_without_duration(self):
        record = {"ph": "X", "pid": 1, "tid": 1, "name": "p", "ts": 0.0}
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [record]})

    def test_accepts_emitted_traces(self):
        validate_chrome_trace(chrome_trace(_sample_tracer().events()))
        validate_chrome_trace(chrome_trace([]))

    def test_rejects_flow_event_without_id(self):
        record = {"ph": "s", "pid": 1, "tid": 1, "name": "f",
                  "ts": 0.0}
        with pytest.raises(ValueError, match="flow"):
            validate_chrome_trace({"traceEvents": [record]})


def _spanned_tracer() -> Tracer:
    """A client span fanning into two kernel-shard spans."""
    tracer = Tracer()
    with tracer.span("client.predict_batch", domain="d",
                     transport="client"):
        with tracer.span("kernel.dispatch", domain="d",
                         transport="kernel", shard="0"):
            pass
        with tracer.span("kernel.dispatch", domain="d",
                         transport="kernel", shard="1",
                         detail={"rows": 2}):
            pass
    return tracer


class TestChromeTraceSpans:
    def test_spans_become_nested_complete_events(self):
        tracer = _spanned_tracer()
        data = chrome_trace(tracer.events(), tracer.spans())
        validate_chrome_trace(data)
        span_records = [r for r in data["traceEvents"]
                        if r.get("cat") == "pss.span"]
        assert len(span_records) == 3
        assert all(r["ph"] == "X" for r in span_records)
        by_id = {r["args"]["span_id"]: r for r in span_records}
        root = next(r for r in span_records
                    if r["args"]["parent_id"] == 0)
        assert root["name"] == "client.predict_batch"
        assert all(r["args"]["status"] == "ok" for r in span_records)
        kids = [r for r in span_records
                if r["args"]["parent_id"] == root["args"]["span_id"]]
        assert len(kids) == 2
        assert any(r["args"].get("rows") == 2 for r in kids)
        assert by_id  # tracked by span id

    def test_cross_track_children_get_flow_arrows(self):
        tracer = _spanned_tracer()
        data = chrome_trace(tracer.events(), tracer.spans())
        starts = [r for r in data["traceEvents"] if r["ph"] == "s"]
        ends = [r for r in data["traceEvents"] if r["ph"] == "f"]
        # both kernel.dispatch children live on other tracks than the
        # client span: one s/f pair each, bound by the child's span id
        assert len(starts) == len(ends) == 2
        assert {r["id"] for r in starts} == {r["id"] for r in ends}
        assert all(r["bp"] == "e" for r in ends)
        client_tid = next(
            r["tid"] for r in data["traceEvents"]
            if r.get("cat") == "pss.span"
            and r["name"] == "client.predict_batch")
        assert all(r["tid"] == client_tid for r in starts)
        assert all(r["tid"] != client_tid for r in ends)

    def test_same_track_children_draw_no_flows(self):
        tracer = Tracer()
        with tracer.span("outer", domain="d", transport="kernel"):
            with tracer.span("inner", domain="d", transport="kernel"):
                pass
        data = chrome_trace(tracer.events(), tracer.spans())
        assert not [r for r in data["traceEvents"]
                    if r["ph"] in ("s", "f")]

    def test_write_chrome_trace_includes_spans(self, tmp_path):
        tracer = _spanned_tracer()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, path)
        assert count == 3  # no events, three spans
        validate_chrome_trace(json.loads(path.read_text()))


class TestPrometheusHygiene:
    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("pss_hits_total",
                    domain='weird"name\\with\nnewline').inc(1)
        text = prometheus_text(reg)
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("pss_hits_total{"))
        assert '\\"' in line           # escaped quote
        assert "\\\\" in line          # escaped backslash
        assert "\\n" in line           # escaped newline
        assert "\n" not in line        # the raw newline never survives

    def test_family_headers_emitted_once_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("pss_hits_total", domain="a").inc(1)
        reg.counter("pss_other_total").inc(1)
        reg.counter("pss_hits_total", domain="b").inc(2)
        reg.histogram("pss_lat_ns", transport="vdso").observe(4.0)
        reg.histogram("pss_lat_ns", transport="syscall").observe(68.0)
        text = prometheus_text(reg)
        assert text.count("# TYPE pss_hits_total counter") == 1
        assert text.count("# HELP pss_hits_total") == 1
        assert text.count("# TYPE pss_lat_ns histogram") == 1
        assert text.count("# HELP pss_lat_ns") == 1
        # family series are contiguous: both hits series directly
        # follow their headers, never interleaved with other families
        lines = text.splitlines()
        start = lines.index("# TYPE pss_hits_total counter")
        assert lines[start + 1].startswith("pss_hits_total{")
        assert lines[start + 2].startswith("pss_hits_total{")

    def test_help_precedes_type_for_each_family(self):
        reg = MetricsRegistry()
        reg.gauge("pss_depth").set(2.0)
        lines = prometheus_text(reg).splitlines()
        assert lines[0].startswith("# HELP pss_depth ")
        assert lines[1] == "# TYPE pss_depth gauge"
        assert lines[2] == "pss_depth 2.0"
