"""Tracer ring-buffer semantics and the null tracer contract."""

import pytest

from repro.obs import EVENT_KINDS, NULL_TRACER, NullTracer, Tracer


class TestTracer:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record("predict", domain="d", transport="vdso",
                      ts_ns=1.0, dur_ns=4.19, generation=3)
        tracer.record("cache_hit", domain="d", transport="vdso",
                      ts_ns=2.0)
        kinds = [e.kind for e in tracer.events()]
        assert kinds == ["predict", "cache_hit"]
        first = tracer.events()[0]
        assert first.ts_ns == 1.0
        assert first.dur_ns == 4.19
        assert first.generation == 3

    def test_sequence_timestamp_fallback(self):
        tracer = Tracer()
        tracer.record("fault")
        tracer.record("fault")
        stamps = [e.ts_ns for e in tracer.events()]
        assert stamps == [1.0, 2.0]

    def test_clock_used_when_no_explicit_timestamp(self):
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0])
        now[0] = 42.5
        tracer.record("flush")
        tracer.record("flush", ts_ns=7.0)
        assert [e.ts_ns for e in tracer.events()] == [42.5, 7.0]

    def test_ring_evicts_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record("predict", ts_ns=float(i))
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [e.ts_ns for e in tracer.events()] == [2.0, 3.0, 4.0]

    def test_ring_wraps_repeatedly(self):
        tracer = Tracer(capacity=2)
        for i in range(7):
            tracer.record("predict", ts_ns=float(i))
        assert [e.ts_ns for e in tracer.events()] == [5.0, 6.0]
        assert tracer.dropped == 5

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for i in range(4):
            tracer.record("predict")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.events() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_detail_round_trips_through_as_dict(self):
        tracer = Tracer()
        tracer.record("retry", detail={"attempt": 2, "errno": "EAGAIN"})
        d = tracer.events()[0].as_dict()
        assert d["detail"] == {"attempt": 2, "errno": "EAGAIN"}
        tracer.record("flush")
        assert "detail" not in tracer.events()[1].as_dict()


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.record("predict", domain="d", detail={"x": 1})
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events() == []
        NULL_TRACER.clear()

    def test_shares_record_signature_with_tracer(self):
        import inspect

        real = inspect.signature(Tracer.record)
        null = inspect.signature(NullTracer.record)
        assert list(real.parameters) == list(null.parameters)


def test_known_event_kinds_cover_instrumentation():
    # The schema the exporters rely on; duration events must be present.
    for kind in ("predict", "update", "reset", "flush", "cache_hit",
                 "cache_miss", "fault", "fault_injected", "retry",
                 "fallback", "breaker_open", "breaker_close",
                 "checkpoint_save", "checkpoint_restore"):
        assert kind in EVENT_KINDS
