"""Flight recorder: trigger dumps, CRC integrity, caps, postmortem CLI."""

import json

import pytest

from repro.obs import (
    BUNDLE_SCHEMA,
    TRIGGER_KINDS,
    FlightRecorder,
    MetricsRegistry,
    load_bundle,
    render_bundle,
)
from repro.obs.postmortem import main as postmortem_main


def recorder(tmp_path, **kwargs):
    return FlightRecorder(tmp_path / "bundles", **kwargs)


class TestTriggers:
    def test_trigger_kinds_cover_the_crash_taxonomy(self):
        assert TRIGGER_KINDS == {"shard_crash", "breaker_open",
                                 "checkpoint.corrupt", "slo.page"}

    def test_trigger_event_dumps_a_bundle(self, tmp_path):
        rec = recorder(tmp_path)
        with rec.span("client.predict", domain="d"):
            rec.record("predict", domain="d")
        rec.record("shard_crash", shard="1", detail={"shard": 1})
        assert len(rec.bundles) == 1
        payload = load_bundle(rec.bundles[0])
        assert payload["trigger"] == "shard_crash"
        assert payload["schema"] == BUNDLE_SCHEMA
        kinds = [e["kind"] for e in payload["events"]]
        assert kinds == ["predict", "shard_crash"]
        assert [s["name"] for s in payload["spans"]] == \
            ["client.predict"]

    def test_open_spans_captured_as_crash_context(self, tmp_path):
        rec = recorder(tmp_path)
        with rec.span("client.predict_batch", domain="d"):
            with rec.span("kernel.dispatch", shard="1"):
                rec.record("shard_crash", shard="1")
        payload = load_bundle(rec.bundles[0])
        assert [s["name"] for s in payload["open_spans"]] == \
            ["client.predict_batch", "kernel.dispatch"]

    def test_non_trigger_events_do_not_dump(self, tmp_path):
        rec = recorder(tmp_path)
        rec.record("predict")
        rec.record("cache_miss")
        assert rec.bundles == []

    def test_max_bundles_cap_suppresses_storms(self, tmp_path):
        rec = recorder(tmp_path, max_bundles=2)
        for _ in range(5):
            rec.record("shard_crash")
        assert len(rec.bundles) == 2
        assert rec.suppressed_dumps == 3

    def test_manual_dump_and_metrics_snapshot(self, tmp_path):
        rec = recorder(tmp_path)
        metrics = MetricsRegistry()
        metrics.counter("pss_shard_crashes_total").inc(3)
        rec.attach_metrics(metrics)
        path = rec.dump()
        payload = load_bundle(path)
        assert payload["trigger"] == "manual"
        assert payload["metrics"]["counters"][0]["value"] == 3

    def test_bundle_filenames_are_deterministic(self, tmp_path):
        rec = recorder(tmp_path)
        rec.record("shard_crash")
        rec.record("slo.page")
        names = [p.name for p in rec.bundles]
        assert names == ["postmortem-001-shard-crash.json",
                         "postmortem-002-slo-page.json"]


class TestBundleIntegrity:
    def test_corrupted_bundle_rejected(self, tmp_path):
        rec = recorder(tmp_path)
        rec.record("shard_crash", detail={"shard": 1})
        path = rec.bundles[0]
        wrapper = json.loads(path.read_text())
        wrapper["bundle"]["trigger"] = "tampered"
        path.write_text(json.dumps(wrapper))
        with pytest.raises(ValueError, match="CRC mismatch"):
            load_bundle(path)

    def test_non_json_and_bad_envelope_rejected(self, tmp_path):
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{ not json")
        with pytest.raises(ValueError, match="not a JSON bundle"):
            load_bundle(garbled)
        envelope = tmp_path / "envelope.json"
        envelope.write_text(json.dumps({"events": []}))
        with pytest.raises(ValueError, match="envelope"):
            load_bundle(envelope)

    def test_future_schema_rejected(self, tmp_path):
        rec = recorder(tmp_path)
        rec.record("shard_crash")
        path = rec.bundles[0]
        wrapper = json.loads(path.read_text())
        wrapper["bundle"]["schema"] = BUNDLE_SCHEMA + 1
        import zlib
        canonical = json.dumps(wrapper["bundle"], sort_keys=True,
                               separators=(",", ":"))
        wrapper["crc32"] = zlib.crc32(canonical.encode("utf-8"))
        path.write_text(json.dumps(wrapper))
        with pytest.raises(ValueError, match="schema"):
            load_bundle(path)


class TestPostmortemCLI:
    def test_renders_tree_and_critical_paths(self, tmp_path, capsys):
        rec = recorder(tmp_path)
        now = [0.0]
        with rec.span("client.predict", domain="d",
                      clock=lambda: now[0]):
            now[0] = 4.19
            with rec.span("kernel.predict", domain="d", shard="1"):
                pass
        rec.record("shard_crash", shard="1")
        status = postmortem_main([str(rec.bundles[0])])
        assert status == 0
        out = capsys.readouterr().out
        assert "trigger: shard_crash" in out
        assert "client.predict" in out
        assert "  kernel.predict" in out  # indented under its parent
        assert "slowest critical paths" in out
        assert "client.predict -> kernel.predict" in out

    def test_usage_and_load_errors_exit_2(self, tmp_path, capsys):
        assert postmortem_main([]) == 2
        assert postmortem_main(["--help"]) == 2
        assert postmortem_main([str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_render_bundle_reports_orphans_as_roots(self):
        # a ring-evicted parent must not hide its surviving children
        payload = {
            "schema": BUNDLE_SCHEMA, "trigger": "manual", "seq": 1,
            "events": [], "open_spans": [], "dropped_events": 0,
            "dropped_spans": 1, "metrics": None,
            "spans": [{"span_id": 7, "parent_id": 3, "name": "leaf",
                       "start_ns": 0.0, "end_ns": 1.0,
                       "status": "ok"}],
        }
        text = render_bundle(payload)
        assert "leaf" in text
