"""Every registered trace kind is actually reachable by the tier-1 suite.

TRC002 proves statically that every kind in ``EVENT_KINDS`` has an emit
site; this test proves *dynamically* that a documented scenario drives
each one - a kind nobody can trigger is dead weight in the taxonomy and
a gap in the docs.  The test fails with the exact list of never-emitted
kinds so a new kind must arrive with its scenario.
"""

from repro.bench.experiments.tenants import (
    parse_reshard_schedule,
    run_chaos,
)
from repro.core import (
    FaultPlan,
    PredictionService,
    PSSConfig,
    ResilienceConfig,
)
from repro.core.kernel.admission import AdmissionController
from repro.core.kernel.service import ShardedService
from repro.core.persistence import CheckpointManager
from repro.core.serving import ServingConfig, ServingPipeline
from repro.obs import EVENT_KINDS, SLO, SLOEngine, Tracer

FEATURES = [3, 5]
CONFIG_KW = dict(num_features=2)


def _vdso_scenario(seen):
    """predict / cache activity / update / reset / flush / batch."""
    tracer = Tracer()
    service = PredictionService(tracer=tracer)
    client = service.connect("d", config=PSSConfig(**CONFIG_KW),
                             batch_size=4)
    client.predict(FEATURES)
    client.predict(FEATURES)
    client.update(FEATURES, True)
    client.flush()
    client.reset(FEATURES, reset_all=True)
    # the batched syscall crossing is the one that emits predict_batch
    batched = service.connect("d", transport="syscall",
                              config=PSSConfig(**CONFIG_KW))
    batched.predict_batch([FEATURES, [1, 2]])
    seen.update(e.kind for e in tracer.events())


def _stale_read_scenario(seen):
    tracer = Tracer()
    service = PredictionService(tracer=tracer)
    client = service.connect(
        "d", config=PSSConfig(**CONFIG_KW),
        fault_plan=FaultPlan(seed=0, stale_read_rate=1.0),
    )
    for _ in range(4):
        client.predict(FEATURES)
    seen.update(e.kind for e in tracer.events())


def _resilience_scenario(seen):
    """faults, retries, fallbacks, and both breaker transitions."""
    tracer = Tracer()
    service = PredictionService(tracer=tracer)
    client = service.connect(
        "d", transport="syscall", config=PSSConfig(**CONFIG_KW),
        resilience=ResilienceConfig(max_attempts=2, breaker_threshold=2,
                                    breaker_cooldown=2),
        fallback=1,
        fault_plan=FaultPlan(seed=5, syscall_failure_rate=0.6),
    )
    for _ in range(60):
        client.predict(FEATURES)
    seen.update(e.kind for e in tracer.events())


def _checkpoint_scenario(seen, tmp_path):
    tracer = Tracer()
    service = PredictionService(tracer=tracer)
    service.create_domain("d", config=PSSConfig(**CONFIG_KW))
    path = tmp_path / "ckpt.json"
    manager = CheckpointManager(service, path, interval=1)
    manager.checkpoint()
    assert manager.recover()
    path.write_text("{ not json")
    assert not manager.recover()
    seen.update(e.kind for e in tracer.events())


def _chaos_scenario(seen):
    """crashes, failover, replicas, migration, plans - one seeded run."""
    tracer = Tracer(capacity=1 << 20)
    run_chaos(seed=0, replicas=2,
              reshard_schedule=parse_reshard_schedule("6:4,14:3"),
              tracer=tracer)
    seen.update(e.kind for e in tracer.events())


def _serving_scenario(seen):
    """enqueue / shed / dispatch / flush-timeout on one tiny pipeline."""
    tracer = Tracer()
    service = ShardedService(tracer=tracer,
                             admission=AdmissionController())
    service.create_domain("d")
    # window > 0 with a partial batch forces the timeout flush; the
    # 2-deep queue makes the burst's tail shed at admission.
    pipeline = ServingPipeline(
        service,
        config=ServingConfig(batch_window_ns=200.0, queue_limit=2),
    )
    for _ in range(5):
        pipeline.submit("d", FEATURES)
    pipeline.mark_load_complete()
    pipeline.run()
    seen.update(e.kind for e in tracer.events())


def _slo_scenario(seen):
    tracer = Tracer()
    engine = SLOEngine(
        [SLO("stale", "staleness", objective=0.9, max_lag=0)],
        tracer=tracer)
    for i in range(10):
        engine.observe("stale", float(i), good=False)
    engine.evaluate()
    seen.update(e.kind for e in tracer.events())


def test_every_registered_kind_is_emitted(tmp_path):
    seen: set[str] = set()
    _vdso_scenario(seen)
    _stale_read_scenario(seen)
    _resilience_scenario(seen)
    _checkpoint_scenario(seen, tmp_path)
    _chaos_scenario(seen)
    _serving_scenario(seen)
    _slo_scenario(seen)
    missing = sorted(EVENT_KINDS - seen)
    assert not missing, (
        f"registered trace kinds never emitted by any scenario: "
        f"{missing}; add a driving scenario here (and to "
        f"docs/OBSERVABILITY.md) or retire the kind")
    # the scenarios only emit registered kinds (TRC001's dynamic twin)
    assert seen <= EVENT_KINDS
