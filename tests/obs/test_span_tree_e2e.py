"""Acceptance: one batch through a crashed-shard service yields one
well-formed span tree - admission, routing, per-shard dispatch,
failover, and plan execution all causally under a single root."""

from repro.core.config import PSSConfig
from repro.core.kernel.admission import AdmissionController
from repro.core.kernel.service import ShardedService
from repro.core.policy import ClientIdentity
from repro.obs import Tracer, span_children, validate_spans
from repro.obs.postmortem import render_tree

IDENTITY = ClientIdentity(uid=7, program="batcher")
ROWS_PER_DOMAIN = 2
NUM_DOMAINS = 8


def crashed_shard_batch(num_shards=4):
    """(tracer, scores, requests, victim shard, per-shard row counts)."""
    tracer = Tracer()
    service = ShardedService(tracer=tracer, num_shards=num_shards,
                             admission=AdmissionController(),
                             num_replicas=1)
    domains = [f"d{i}" for i in range(NUM_DOMAINS)]
    for name in domains:
        service.create_domain(name, config=PSSConfig(num_features=2))
    # warm the replicas so the crashed shard can serve follower reads
    service.sync_replicas()
    victim = service.shard_of(domains[0])
    service.crash_shard(victim)
    requests = []
    for _ in range(ROWS_PER_DOMAIN):
        for name in domains:
            requests.append((name, (1, 2)))
    rows_by_shard: dict[int, int] = {}
    for name, _features in requests:
        shard = service.shard_of(name)
        rows_by_shard[shard] = rows_by_shard.get(shard, 0) + 1
    tracer.clear()  # only the batch under test in the ring
    scores = service.predict_batch(requests, identity=IDENTITY)
    return tracer, scores, requests, victim, rows_by_shard


class TestBatchSpanTree:
    def test_single_root_tree_with_all_stages(self):
        tracer, scores, requests, victim, rows_by_shard = \
            crashed_shard_batch()
        assert len(scores) == len(requests)
        spans = tracer.spans()
        roots = validate_spans(spans)  # raises on orphans/dups/open
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "kernel.predict_batch"
        assert root.detail == {"rows": len(requests)}
        children = span_children(spans)
        stages = children[root.span_id]
        assert stages[0].name == "kernel.admission"
        assert stages[0].detail == {"count": len(requests)}
        assert stages[1].name == "kernel.route"
        dispatches = stages[2:]
        assert all(s.name == "kernel.dispatch" for s in dispatches)
        # one dispatch per shard that owns rows, in shard-id order,
        # each annotated with the rows routed to it
        assert [s.shard for s in dispatches] == \
            [str(shard) for shard in sorted(rows_by_shard)]
        assert {s.shard: s.detail["rows"] for s in dispatches} == \
            {str(shard): rows for shard, rows in rows_by_shard.items()}

    def test_crashed_shard_dispatch_holds_failovers(self):
        tracer, _, _, victim, rows_by_shard = crashed_shard_batch()
        spans = tracer.spans()
        children = span_children(spans)
        by_shard = {s.shard: s for s in spans
                    if s.name == "kernel.dispatch"}
        crashed_kids = [s.name for s in
                        children[by_shard[str(victim)].span_id]]
        # every row on the crashed shard is served by follower failover
        assert crashed_kids == ["kernel.failover"] * rows_by_shard[victim]
        for shard in rows_by_shard:
            if shard == victim:
                continue
            kids = [s.name for s in
                    children[by_shard[str(shard)].span_id]]
            # live shards run one specialized plan pass per domain
            assert kids and all(name == "plan.execute" for name in kids)

    def test_routing_annotates_fanout(self):
        tracer, _, requests, _, rows_by_shard = crashed_shard_batch()
        route, = [s for s in tracer.spans() if s.name == "kernel.route"]
        assert route.detail["rows"] == len(requests)
        assert route.detail["shards"] == len(rows_by_shard)

    def test_rendered_tree_shows_the_causal_story(self):
        tracer, _, _, _, _ = crashed_shard_batch()
        text = render_tree(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("kernel.predict_batch")
        assert any(line.startswith("  kernel.admission")
                   for line in lines)
        assert any(line.startswith("    kernel.failover")
                   for line in lines)
        assert any(line.startswith("    plan.execute")
                   for line in lines)

    def test_untraced_batch_produces_identical_scores(self):
        traced_scores = crashed_shard_batch()[1]
        service = ShardedService(num_shards=4,
                                 admission=AdmissionController(),
                                 num_replicas=1)
        for i in range(NUM_DOMAINS):
            service.create_domain(f"d{i}",
                                  config=PSSConfig(num_features=2))
        service.sync_replicas()
        service.crash_shard(service.shard_of("d0"))
        requests = []
        for _ in range(ROWS_PER_DOMAIN):
            for i in range(NUM_DOMAINS):
                requests.append((f"d{i}", (1, 2)))
        assert service.predict_batch(requests,
                                     identity=IDENTITY) == traced_scores
