"""Span API semantics: causality, clocks, rings, and null no-ops."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionService, PSSConfig
from repro.obs import (
    NULL_TRACER,
    Span,
    Tracer,
    span_children,
    validate_spans,
)

FEATURES = [3, 5]
CONFIG_KW = dict(num_features=2)


class TestSpanTree:
    def test_nested_spans_record_parent_child(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == [
            "grandchild", "child", "sibling", "root"]
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        assert root.parent_id == 0
        roots = validate_spans(spans)
        assert [r.span_id for r in roots] == [root.span_id]
        children = span_children(spans)
        assert {s.name for s in children[root.span_id]} == \
            {"child", "sibling"}

    def test_events_attach_to_enclosing_span(self):
        tracer = Tracer()
        tracer.record("predict")  # outside any span
        with tracer.span("root") as root:
            tracer.record("cache_miss")
            with tracer.span("child") as child:
                tracer.record("cache_hit")
        outside, in_root, in_child = tracer.events()
        assert outside.span_id == 0
        assert in_root.span_id == root.span_id
        assert in_child.span_id == child.span_id
        # span-free events serialize without the field at all, so a
        # span-free trace is byte-identical to pre-span releases
        assert "span_id" not in outside.as_dict()
        assert in_root.as_dict()["span_id"] == root.span_id

    def test_exception_marks_span_status_and_still_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        child, root = tracer.spans()
        assert child.status == "error:RuntimeError"
        assert root.status == "error:RuntimeError"
        assert tracer.open_spans() == []
        assert tracer.current_span_id() == 0

    def test_annotate_adds_detail_fields(self):
        tracer = Tracer()
        with tracer.span("route", detail={"rows": 4}) as span:
            span.annotate(shards=2)
        done, = tracer.spans()
        assert done.detail == {"rows": 4, "shards": 2}

    def test_span_ring_is_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        spans = tracer.spans()
        assert len(spans) == 4
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.span_dropped == 6

    def test_clear_resets_span_state(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.span_dropped == 0
        with tracer.span("b") as b:
            assert b.span_id == 1  # ids restart after clear


class TestClocks:
    def test_explicit_clock_drives_timestamps(self):
        tracer = Tracer()
        now = [100.0]
        with tracer.span("op", clock=lambda: now[0]):
            now[0] = 160.0
        span, = tracer.spans()
        assert span.start_ns == 100.0
        assert span.end_ns == 160.0
        assert span.dur_ns == 60.0

    def test_nested_span_inherits_enclosing_clock(self):
        tracer = Tracer()
        now = [10.0]
        with tracer.span("outer", clock=lambda: now[0]):
            now[0] = 30.0
            # no own clock: the kernel span rides the transport's
            # simulated timeline instead of the tracer's sequence
            with tracer.span("inner"):
                now[0] = 45.0
        inner, outer = tracer.spans()
        assert inner.start_ns == 30.0
        assert inner.end_ns == 45.0
        assert outer.dur_ns == 45.0 - 10.0

    def test_clock_stack_pops_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed", clock=lambda: 5.0):
            pass
        with tracer.span("counted"):
            pass
        timed, counted = tracer.spans()
        assert timed.start_ns == 5.0
        # after the clocked span exits, the sequence clock is back
        assert counted.start_ns != 5.0 or counted.end_ns != 5.0


class TestNullTracer:
    def test_null_span_is_free_and_inert(self):
        handle = NULL_TRACER.span("anything", domain="d")
        with handle as span:
            span.annotate(rows=3)  # must not raise or allocate state
            assert span.span_id == 0
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.open_spans() == []
        assert NULL_TRACER.current_span_id() == 0
        assert NULL_TRACER.span_dropped == 0


class TestValidation:
    def test_validate_rejects_orphans(self):
        orphan = Span(span_id=2, parent_id=99, name="x",
                      status="ok")
        with pytest.raises(ValueError, match="orphan"):
            validate_spans([orphan])

    def test_validate_rejects_duplicates_and_open(self):
        a = Span(span_id=1, parent_id=0, name="a", status="ok")
        dup = Span(span_id=1, parent_id=0, name="b", status="ok")
        with pytest.raises(ValueError):
            validate_spans([a, dup])
        still_open = Span(span_id=3, parent_id=0, name="c")
        with pytest.raises(ValueError):
            validate_spans([still_open])

    def test_round_trip_through_dicts(self):
        tracer = Tracer()
        with tracer.span("root", domain="d", transport="vdso",
                         shard="1", detail={"rows": 2}):
            pass
        span, = tracer.spans()
        assert Span.from_dict(span.as_dict()) == span


class TestTracedUntracedIdentity:
    """Tracing must never perturb results: same scores, same weights."""

    @given(seed=st.integers(0, 7),
           ops=st.lists(st.integers(0, 2), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_vdso_stack_identical_with_and_without_tracing(
            self, seed, ops):
        def run(tracer):
            service = PredictionService(tracer=tracer)
            client = service.connect(
                "d", config=PSSConfig(seed=seed, **CONFIG_KW))
            out = []
            for op in ops:
                if op == 0:
                    out.append(client.predict(FEATURES))
                elif op == 1:
                    client.update(FEATURES, True)
                else:
                    out.append(client.predict([1, 2]))
            out.append(service.domain("d").generation)
            return out

        assert run(NULL_TRACER) == run(Tracer())
