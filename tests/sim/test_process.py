"""Tests for simulated processes and events."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import SimEvent, run_all, spawn


class TestProcessBasics:
    def test_delays_accumulate(self):
        eng = Engine()
        trace = []

        def body():
            trace.append(eng.now)
            yield 10
            trace.append(eng.now)
            yield 15
            trace.append(eng.now)

        spawn(eng, body())
        eng.run()
        assert trace == [0.0, 10.0, 25.0]

    def test_finished_flag(self):
        eng = Engine()

        def body():
            yield 5

        p = spawn(eng, body())
        assert p.finished is False
        eng.run()
        assert p.finished is True

    def test_negative_yield_rejected(self):
        eng = Engine()

        def body():
            yield -3

        spawn(eng, body())
        with pytest.raises(SimulationError):
            eng.run()

    def test_unknown_command_rejected(self):
        eng = Engine()

        def body():
            yield "nonsense"

        spawn(eng, body())
        with pytest.raises(SimulationError):
            eng.run()

    def test_run_all_spawns_and_drains(self):
        eng = Engine()
        done = []

        def body(i):
            yield i * 10
            done.append(i)

        processes = run_all(eng, (body(i) for i in range(3)))
        assert done == [0, 1, 2]
        assert all(p.finished for p in processes)


class TestSimEvent:
    def test_wait_blocks_until_fire(self):
        eng = Engine()
        evt = SimEvent(eng)
        trace = []

        def waiter():
            yield evt.wait()
            trace.append(("woke", eng.now))

        def firer():
            yield 30
            evt.fire()

        spawn(eng, waiter())
        spawn(eng, firer())
        eng.run()
        assert trace == [("woke", 30.0)]

    def test_fire_wakes_all(self):
        eng = Engine()
        evt = SimEvent(eng)
        woke = []

        def waiter(i):
            yield evt.wait()
            woke.append(i)

        for i in range(3):
            spawn(eng, waiter(i))

        def firer():
            yield 5
            assert evt.fire() == 3

        spawn(eng, firer())
        eng.run()
        assert sorted(woke) == [0, 1, 2]

    def test_fire_one_wakes_fifo(self):
        eng = Engine()
        evt = SimEvent(eng)
        woke = []

        def waiter(i):
            yield evt.wait()
            woke.append(i)

        for i in range(2):
            spawn(eng, waiter(i))

        def firer():
            yield 5
            evt.fire_one()
            yield 5
            evt.fire_one()

        spawn(eng, firer())
        eng.run()
        assert woke == [0, 1]

    def test_payload_passed_to_waiter(self):
        eng = Engine()
        evt = SimEvent(eng)
        got = []

        def waiter():
            payload = yield evt.wait()
            got.append(payload)

        spawn(eng, waiter())
        eng.schedule(1, lambda: evt.fire("hello"))
        eng.run()
        assert got == ["hello"]


class TestJoin:
    def test_parent_waits_for_child(self):
        eng = Engine()
        trace = []

        def child():
            yield 50
            trace.append(("child-done", eng.now))

        def parent():
            c = spawn(eng, child())
            yield c.join()
            trace.append(("parent-done", eng.now))

        spawn(eng, parent())
        eng.run()
        assert trace == [("child-done", 50.0), ("parent-done", 50.0)]
