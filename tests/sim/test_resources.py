"""Tests for simulated mutex, semaphore, and gauges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, SimulationError
from repro.sim.resources import Gauge, SimMutex, SimSemaphore
from repro.sim.process import spawn
from repro.sim.rng import RngStreams


class TestSimMutex:
    def test_mutual_exclusion_serializes(self):
        eng = Engine()
        m = SimMutex(eng)
        active = []
        overlaps = []

        def worker(i):
            yield m.acquire()
            active.append(i)
            if len(active) > 1:
                overlaps.append(tuple(active))
            yield 100
            active.remove(i)
            m.release()

        for i in range(4):
            spawn(eng, worker(i))
        eng.run()
        assert overlaps == []
        assert eng.now == 400.0  # fully serialized

    def test_fifo_handoff(self):
        eng = Engine()
        m = SimMutex(eng)
        order = []

        def worker(i):
            yield i  # stagger arrival
            yield m.acquire()
            order.append(i)
            yield 50
            m.release()

        for i in range(3):
            spawn(eng, worker(i))
        eng.run()
        assert order == [0, 1, 2]

    def test_release_unowned_raises(self):
        eng = Engine()
        m = SimMutex(eng)
        with pytest.raises(SimulationError):
            m.release()

    def test_statistics(self):
        eng = Engine()
        m = SimMutex(eng)

        def worker():
            yield m.acquire()
            yield 10
            m.release()

        for _ in range(3):
            spawn(eng, worker())
        eng.run()
        assert m.acquisitions == 3
        assert m.contended_acquisitions == 2
        assert m.total_wait_ns == pytest.approx(10 + 20)
        assert m.peak_queue_depth == 2

    def test_is_locked_observable(self):
        eng = Engine()
        m = SimMutex(eng)
        observed = []

        def holder():
            yield m.acquire()
            yield 100
            m.release()

        def observer():
            yield 50
            observed.append(m.is_locked)
            yield 100
            observed.append(m.is_locked)

        spawn(eng, holder())
        spawn(eng, observer())
        eng.run()
        assert observed == [True, False]


class TestSimSemaphore:
    def test_permits_bound_concurrency(self):
        eng = Engine()
        sem = SimSemaphore(eng, permits=2)
        concurrent = [0]
        peak = [0]

        def worker():
            yield sem.acquire()
            concurrent[0] += 1
            peak[0] = max(peak[0], concurrent[0])
            yield 100
            concurrent[0] -= 1
            sem.release()

        for _ in range(5):
            spawn(eng, worker())
        eng.run()
        assert peak[0] == 2

    def test_negative_permits_rejected(self):
        with pytest.raises(SimulationError):
            SimSemaphore(Engine(), permits=-1)


class TestGauge:
    def test_wait_below_fires_on_drop(self):
        eng = Engine()
        g = Gauge(eng, value=10)
        trace = []

        def waiter():
            yield g.wait_below(5).wait()
            trace.append(eng.now)

        def mover():
            yield 40
            g.set(3)

        spawn(eng, waiter())
        spawn(eng, mover())
        eng.run()
        assert trace == [40.0]

    def test_wait_below_already_satisfied(self):
        eng = Engine()
        g = Gauge(eng, value=1)
        trace = []

        def waiter():
            yield g.wait_below(5).wait()
            trace.append(eng.now)

        spawn(eng, waiter())
        eng.run()
        assert trace == [0.0]

    def test_wait_above(self):
        eng = Engine()
        g = Gauge(eng, value=0)
        trace = []

        def waiter():
            yield g.wait_above(7).wait()
            trace.append(g.value)

        def mover():
            yield 10
            g.add(5)
            yield 10
            g.add(5)

        spawn(eng, waiter())
        spawn(eng, mover())
        eng.run()
        assert trace == [10.0]


class TestRngStreams:
    def test_streams_are_deterministic(self):
        a = RngStreams(seed=7).stream("x").random()
        b = RngStreams(seed=7).stream("x").random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RngStreams(seed=7)
        x = streams.stream("x")
        y = streams.stream("y")
        seq_x = [x.random() for _ in range(5)]
        # Drawing from y must not perturb x's future sequence.
        fresh = RngStreams(seed=7)
        fx = fresh.stream("x")
        _ = [fresh.stream("y").random() for _ in range(100)]
        assert [fx.random() for _ in range(5)] == seq_x

    def test_different_names_differ(self):
        streams = RngStreams(seed=7)
        assert streams.stream("a").random() != streams.stream("b").random()

    def test_fork_changes_family(self):
        base = RngStreams(seed=7)
        forked = base.fork(1)
        assert base.stream("x").random() != forked.stream("x").random()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32), st.text(min_size=1, max_size=10))
    def test_any_seed_name_combo_works(self, seed, name):
        value = RngStreams(seed).stream(name).random()
        assert 0.0 <= value < 1.0
