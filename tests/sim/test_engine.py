"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.schedule(30, lambda: order.append("c"))
        eng.schedule(10, lambda: order.append("a"))
        eng.schedule(20, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        order = []
        for tag in "abc":
            eng.schedule(5, lambda t=tag: order.append(t))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        eng = Engine()
        seen = []
        eng.schedule(42, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [42.0]
        assert eng.now == 42.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1, lambda: None)

    def test_schedule_at_absolute_time(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        eng.run()
        seen = []
        eng.schedule_at(25, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [25.0]

    def test_nested_scheduling(self):
        eng = Engine()
        times = []

        def first():
            times.append(eng.now)
            eng.schedule(5, second)

        def second():
            times.append(eng.now)

        eng.schedule(10, first)
        eng.run()
        assert times == [10.0, 15.0]


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        event_id = eng.schedule(10, lambda: fired.append(1))
        eng.cancel(event_id)
        eng.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        eng.schedule(10, lambda: None)
        event_id = eng.schedule(20, lambda: None)
        eng.cancel(event_id)
        assert eng.pending() == 1


class TestRunUntil:
    def test_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.schedule(10, lambda: fired.append("early"))
        eng.schedule(100, lambda: fired.append("late"))
        eng.run(until=50)
        assert fired == ["early"]
        assert eng.now == 50.0
        eng.run()
        assert fired == ["early", "late"]

    def test_until_advances_clock_even_when_idle(self):
        eng = Engine()
        eng.run(until=123)
        assert eng.now == 123.0

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_max_events_guard(self):
        eng = Engine()

        def rearm():
            eng.schedule(1, rearm)

        eng.schedule(1, rearm)
        with pytest.raises(SimulationError):
            eng.run(max_events=1000)
