"""Process discovery and the RAC001/RAC002/RAC003 race rules."""

import json

from repro.analysis.concurrency import (
    SANCTIONED_OWNERS,
    ProcessModel,
)
from repro.analysis.engine import Project, run_rules
from repro.analysis.rules import select_rules

from .conftest import FIXTURES, REPO_ROOT


def check(tree, rule_ids):
    project = Project(FIXTURES / tree)
    return run_rules(project, select_rules(rule_ids))


class TestProcessDiscovery:
    def test_real_tree_entries(self):
        model = ProcessModel.for_project(Project(REPO_ROOT))
        assert sorted(model.entries) == [
            "bench/loadgen.py::LoadGenerator._arrivals",
            "bench/loadgen.py::LoadGenerator._client",
            "core/serving/dispatch.py::Dispatcher._run",
            "core/serving/pipeline.py::ServingPipeline._monitor",
        ]

    def test_fixture_entries_are_generators_only(self):
        model = ProcessModel.for_project(
            Project(FIXTURES / "rac001"))
        assert all(entry.fn.is_generator
                   for entry in model.sorted_entries())
        # start()/reset_stats are spawn *sites* or sync paths, never
        # entries themselves.
        assert not any(entry.fn.name in ("start", "reset_stats")
                       for entry in model.sorted_entries())

    def test_non_serving_modules_not_scanned(self):
        # The htm/mm sim processes live outside core/serving/ and
        # bench/: by design they are not serving processes.
        model = ProcessModel.for_project(Project(REPO_ROOT))
        assert all(
            entry.spawn_module.startswith(("core/serving/", "bench/"))
            for entry in model.sorted_entries())


class TestRac001:
    def test_two_process_writes_flagged_at_both_sites(self):
        findings, _ = check("rac001", ["RAC001"])
        served = [f for f in findings if "served" in f.message]
        assert len(served) == 2
        assert {f.line for f in served} == {23, 40}
        assert all(f.rule_id == "RAC001" and f.severity == "error"
                   for f in served)
        joined = " ".join(f.message for f in served)
        assert "PredictWorker._run" in joined
        assert "UpdateWorker._run" in joined

    def test_process_plus_sync_write_flagged(self):
        findings, _ = check("rac001", ["RAC001"])
        (dropped,) = [f for f in findings if "dropped" in f.message]
        assert "DropWorker._run" in dropped.message
        assert "synchronous path" in dropped.message
        assert "reset_stats" in dropped.message

    def test_sanctioned_owner_and_private_state_clean(self):
        findings, _ = check("rac001", ["RAC001"])
        # QueueFeeder funnels through RequestQueue.push (sanctioned);
        # PredictWorker.local_count has one writer.
        joined = " ".join(f.message for f in findings)
        assert "RequestQueue" not in joined
        assert "local_count" not in joined
        assert len(findings) == 3

    def test_hint_names_owning_components(self):
        findings, _ = check("rac001", ["RAC001"])
        assert all("sanctioned owner" in f.hint for f in findings)

    def test_real_tree_clean(self):
        findings, suppressed = run_rules(
            Project(REPO_ROOT), select_rules(["RAC001"]))
        assert findings == []
        # The two documented deliberate-sharing pragmas in
        # bench/loadgen.py (issued, _closed_remaining).
        assert suppressed == 2


class TestRac002:
    def test_check_yield_act_flagged(self):
        findings, _ = check("rac002", ["RAC002"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule_id == "RAC002"
        assert "BadAdmitter._admit_loop" in finding.message
        assert "self.queue.depth" in finding.message
        assert "yield" in finding.message
        # Anchored at the stale act, not the check.
        assert "append" in finding.source_line

    def test_reread_and_atomic_variants_clean(self):
        findings, _ = check("rac002", ["RAC002"])
        joined = " ".join(f.message for f in findings)
        assert "GoodAdmitter" not in joined
        assert "AtomicAdmitter" not in joined

    def test_real_tree_clean(self):
        findings, _ = run_rules(Project(REPO_ROOT),
                                select_rules(["RAC002"]))
        assert findings == []


class TestRac003:
    def test_settle_site_shared_by_two_processes_flagged(self):
        findings, _ = check("rac003", ["RAC003"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule_id == "RAC003"
        assert "DoubleSettler._finish" in finding.message
        assert "_worker" in finding.message
        assert "_reaper" in finding.message
        assert "request.future.complete" in finding.message

    def test_creator_owned_and_single_process_clean(self):
        findings, _ = check("rac003", ["RAC003"])
        joined = " ".join(f.message for f in findings)
        assert "LocalSettler" not in joined
        assert "SingleSettler" not in joined

    def test_real_tree_clean(self):
        findings, _ = run_rules(Project(REPO_ROOT),
                                select_rules(["RAC003"]))
        assert findings == []


class TestInterproceduralQue001:
    def test_kernel_entry_via_helper_caught(self):
        findings, _ = check("que001", ["QUE001"])
        indirect = [f for f in findings
                    if f.path.endswith("bench/indirect.py")]
        assert len(indirect) == 1
        (finding,) = indirect
        assert "score_helper" in finding.message
        assert "IndirectWorker._run" in finding.message
        assert "->" in finding.message  # the call path is named
        assert "predict_batch" in finding.source_line

    def test_helper_def_and_decorators_are_pragma_anchors(self):
        findings, suppressed = check("rac_pragmas", ["QUE001"])
        # decorator-line, def-line, and multi-line-first-line pragmas
        # suppress; the closing-line pragma misses the anchor.
        assert suppressed == 3
        assert len(findings) == 1
        assert "helper_multiline_last_line" in findings[0].message

    def test_multiline_call_anchors_to_first_line(self):
        findings, _ = check("rac_pragmas", ["QUE001"])
        (finding,) = findings
        # The call spans three lines; the finding pins the first.
        assert finding.source_line.startswith(
            "return service.predict_batch(")


class TestFingerprintPins:
    def test_pinned_fingerprints_match(self):
        """The CI smoke step asserts these exact fingerprints; keep
        the pin honest from the test suite too."""
        pins = json.loads(
            (FIXTURES / "rac-fingerprints.json").read_text())
        for tree, spec in pins.items():
            findings, _ = check(tree, [spec["rule"]])
            got = sorted(f"{f.fingerprint():08x}" for f in findings)
            assert got == spec["fingerprints"], tree


class TestOwnershipModel:
    def test_sanctioned_owners_exist_in_real_tree(self):
        """Every sanctioned owner the rules trust must be a real class
        (a stale name would silently stop mediating anything)."""
        from repro.analysis.callgraph import ProgramIndex
        index = ProgramIndex.for_project(Project(REPO_ROOT))
        for owner in SANCTIONED_OWNERS:
            assert index.resolve_class(owner) is not None, owner
