"""The ``python -m repro check`` gate, end to end.

The two load-bearing properties: the shipped tree is clean (exit 0),
and a seeded violation in a copy of the tree fails it (exit 1).
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis.cli import main

from .conftest import REPO_ROOT


def seeded_tree(tmp_path, violation="\nimport time\n"
                                    "_BOOT = time.time()\n"):
    """A copy of the real package with one violation appended."""
    shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
    target = tmp_path / "src" / "repro" / "core" / "config.py"
    target.write_text(target.read_text() + violation)
    return tmp_path


class TestShippedTree:
    def test_clean(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("0 findings")

    def test_clean_under_baseline(self):
        assert main(["--root", str(REPO_ROOT), "--baseline"]) == 0

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "check", "--format", "json"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["findings"] == []
        assert report["checked_files"] > 50


class TestSeededViolation:
    def test_fails_with_located_finding(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "core/config.py" in out
        assert "DET001 error" in out

    def test_json_report(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        (finding,) = report["findings"]
        assert finding["rule"] == "DET001"
        assert finding["source_line"] == "_BOOT = time.time()"

    def test_output_artifact_written(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        artifact = tmp_path / "findings.json"
        assert main(["--root", str(root),
                     "--output", str(artifact)]) == 1
        capsys.readouterr()
        report = json.loads(artifact.read_text())
        assert len(report["findings"]) == 1

    def test_write_baseline_grandfathers(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        # Grandfathered: the same violation no longer fails...
        assert main(["--root", str(root), "--baseline"]) == 0
        # ...but without --baseline it still does,
        assert main(["--root", str(root)]) == 1
        # and a *new* violation fails even under the baseline.
        extra = root / "src" / "repro" / "core" / "errors.py"
        extra.write_text(extra.read_text() + "\nimport random\n")
        capsys.readouterr()
        assert main(["--root", str(root), "--baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "1 baselined" in out

    def test_corrupt_baseline_is_exit_2(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        baseline = root / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["findings"] = []
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["--root", str(root), "--baseline"]) == 2


class TestUsage:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("API001", "CTR001", "DET001", "DET002",
                        "EXC001", "TRC001", "TRC002"):
            assert rule_id in out

    def test_unknown_rule_is_exit_2(self, capsys):
        assert main(["--rules", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_flag_is_exit_2(self, capsys):
        assert main(["--no-such-flag"]) == 2
        capsys.readouterr()

    def test_missing_root_is_exit_2(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_rule_subset_runs(self, capsys):
        assert main(["--root", str(REPO_ROOT),
                     "--rules", "DET001,DET002"]) == 0
        capsys.readouterr()


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_shipped_tree_reports_files_checked(fmt, capsys):
    assert main(["--root", str(REPO_ROOT), "--format", fmt]) == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out)["checked_files"] > 50
    else:
        assert "files" in out
