"""The ``python -m repro check`` gate, end to end.

The two load-bearing properties: the shipped tree is clean (exit 0),
and a seeded violation in a copy of the tree fails it (exit 1).
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis.cli import main

from .conftest import REPO_ROOT


def seeded_tree(tmp_path, violation="\nimport time\n"
                                    "_BOOT = time.time()\n"):
    """A copy of the real package with one violation appended."""
    shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
    target = tmp_path / "src" / "repro" / "core" / "config.py"
    target.write_text(target.read_text() + violation)
    return tmp_path


class TestShippedTree:
    def test_clean(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("0 findings")

    def test_clean_under_baseline(self):
        assert main(["--root", str(REPO_ROOT), "--baseline"]) == 0

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "check", "--format", "json"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(result.stdout)
        assert report["findings"] == []
        assert report["checked_files"] > 50


class TestSeededViolation:
    def test_fails_with_located_finding(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "core/config.py" in out
        assert "DET001 error" in out

    def test_json_report(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        (finding,) = report["findings"]
        assert finding["rule"] == "DET001"
        assert finding["source_line"] == "_BOOT = time.time()"

    def test_output_artifact_written(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        artifact = tmp_path / "findings.json"
        assert main(["--root", str(root),
                     "--output", str(artifact)]) == 1
        capsys.readouterr()
        report = json.loads(artifact.read_text())
        assert len(report["findings"]) == 1

    def test_write_baseline_grandfathers(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        # Grandfathered: the same violation no longer fails...
        assert main(["--root", str(root), "--baseline"]) == 0
        # ...but without --baseline it still does,
        assert main(["--root", str(root)]) == 1
        # and a *new* violation fails even under the baseline.
        extra = root / "src" / "repro" / "core" / "errors.py"
        extra.write_text(extra.read_text() + "\nimport random\n")
        capsys.readouterr()
        assert main(["--root", str(root), "--baseline"]) == 1
        out = capsys.readouterr().out
        assert "DET002" in out
        assert "1 baselined" in out

    def test_corrupt_baseline_is_exit_2(self, tmp_path, capsys):
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--write-baseline"]) == 0
        baseline = root / "analysis-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["findings"] = []
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["--root", str(root), "--baseline"]) == 2


def git(root, *args):
    return subprocess.run(
        ["git", "-C", str(root), "-c", "user.email=t@t",
         "-c", "user.name=t", *args],
        capture_output=True, text=True, check=True,
    )


class TestChanged:
    def test_scopes_per_file_rules_to_diffed_files(self, tmp_path,
                                                   capsys):
        (tmp_path / "stale.py").write_text(
            "import time\nA = time.time()\n")
        (tmp_path / "fresh.py").write_text("B = 1\n")
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        # Only fresh.py changes; stale.py's violation predates the
        # diff and stays out of the fast pre-push loop.
        (tmp_path / "fresh.py").write_text(
            "import time\nB = time.time()\n")
        assert main(["--root", str(tmp_path), "--changed",
                     "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["changed_files"] == 1
        assert [f["path"] for f in report["findings"]] == ["fresh.py"]
        # The full (unscoped) run still sees both.
        capsys.readouterr()
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "stale.py" in out and "fresh.py" in out

    def test_cross_file_finish_pass_still_runs(self, tmp_path,
                                               capsys):
        shutil.copytree(REPO_ROOT / "tests" / "analysis" / "fixtures"
                        / "rac001", tmp_path / "tree")
        root = tmp_path / "tree"
        git(root, "init", "-q")
        git(root, "add", ".")
        git(root, "commit", "-qm", "seed")
        # Empty diff: the per-file pass covers nothing, but the
        # interprocedural finish pass still audits the whole tree.
        assert main(["--root", str(root), "--changed",
                     "--rules", "RAC001", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["changed_files"] == 0
        assert len(report["findings"]) == 3

    def test_state_accumulating_rules_see_unchanged_files(
            self, tmp_path, capsys):
        """TRC002 collects emission sites in check_file and reports in
        finish; scoping must filter findings, not starve that state
        (else every kind looks dead the moment the diff is small)."""
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-qm", "seed")
        readme = tmp_path / "README.md"
        readme.write_text("touched\n")
        git(tmp_path, "add", ".")
        assert main(["--root", str(tmp_path), "--changed",
                     "--rules", "TRC002"]) == 0
        capsys.readouterr()

    def test_without_git_is_exit_2(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "--changed"]) == 2
        assert "git" in capsys.readouterr().err


class TestSarif:
    def test_sarif_stdout_validates(self, tmp_path, capsys):
        from repro.analysis.sarif import (
            FINGERPRINT_KEY,
            validate_sarif,
        )
        root = seeded_tree(tmp_path)
        assert main(["--root", str(root), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        validate_sarif(payload)
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        (result,) = run["results"]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] \
            == "src/repro/core/config.py"
        assert location["region"]["startLine"] >= 1
        assert FINGERPRINT_KEY in result["partialFingerprints"]
        # Every registered rule lands in the driver table.
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "RAC001" in ids and ids == sorted(ids)

    def test_sarif_out_artifact_next_to_json(self, tmp_path, capsys):
        from repro.analysis.sarif import validate_sarif
        root = seeded_tree(tmp_path)
        json_artifact = tmp_path / "findings.json"
        sarif_artifact = tmp_path / "findings.sarif"
        assert main(["--root", str(root),
                     "--output", str(json_artifact),
                     "--sarif-out", str(sarif_artifact)]) == 1
        capsys.readouterr()
        validate_sarif(json.loads(sarif_artifact.read_text()))
        assert json.loads(json_artifact.read_text())["findings"]

    def test_clean_tree_sarif_has_no_results(self, capsys):
        from repro.analysis.sarif import validate_sarif
        assert main(["--root", str(REPO_ROOT),
                     "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_sarif(payload)
        assert payload["runs"][0]["results"] == []

    def test_validator_rejects_malformed(self):
        from repro.analysis.sarif import validate_sarif
        with pytest.raises(ValueError):
            validate_sarif({"version": "2.1.0", "runs": []})
        with pytest.raises(ValueError):
            validate_sarif({"version": "1.0.0", "runs": [{}]})


class TestUsage:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("API001", "CTR001", "DET001", "DET002",
                        "EXC001", "TRC001", "TRC002"):
            assert rule_id in out

    def test_unknown_rule_is_exit_2(self, capsys):
        assert main(["--rules", "NOPE99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_flag_is_exit_2(self, capsys):
        assert main(["--no-such-flag"]) == 2
        capsys.readouterr()

    def test_missing_root_is_exit_2(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path / "absent")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_rule_subset_runs(self, capsys):
        assert main(["--root", str(REPO_ROOT),
                     "--rules", "DET001,DET002"]) == 0
        capsys.readouterr()


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_shipped_tree_reports_files_checked(fmt, capsys):
    assert main(["--root", str(REPO_ROOT), "--format", fmt]) == 0
    out = capsys.readouterr().out
    if fmt == "json":
        assert json.loads(out)["checked_files"] > 50
    else:
        assert "files" in out
