"""Unit tests for the whole-program layer (symbol tables, summaries,
type inference, bounded reachability)."""

import textwrap

import pytest

from repro.analysis.callgraph import (
    MAX_CALL_DEPTH,
    ProgramIndex,
    ann_type_name,
    attr_chain,
)
from repro.analysis.engine import Project


def make_index(tmp_path, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return ProgramIndex(Project(tmp_path))


class TestAttrChain:
    def test_plain_chain(self):
        import ast
        node = ast.parse("self.queue.items").body[0].value
        assert attr_chain(node) == ("self", "queue", "items")

    def test_subscript_peeled(self):
        import ast
        node = ast.parse("self.queues[i].depth").body[0].value
        assert attr_chain(node) == ("self", "queues", "depth")

    def test_call_rooted_chain_is_none(self):
        import ast
        node = ast.parse("make().depth").body[0].value
        assert attr_chain(node) is None


class TestAnnTypeName:
    @pytest.mark.parametrize("source, expected", [
        ("x: Queue", "Queue"),
        ("x: mod.Queue", "Queue"),
        ('x: "Queue"', "Queue"),
        ('x: "Queue | None"', "Queue"),
        ('x: "None | Queue"', "Queue"),
        ('x: "repro.core.Queue"', "Queue"),
        ("x: Queue | None", "Queue"),
        ("x: Optional[Queue]", "Queue"),
        ("x: list[Queue]", None),
        ("x: 42", None),
    ])
    def test_forms(self, source, expected):
        import ast
        ann = ast.parse(source).body[0].annotation
        assert ann_type_name(ann) == expected


class TestSummaries:
    def test_function_summary_shape(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Worker:
                def __init__(self, queue: "Queue"):
                    self.queue = queue

                def run(self):
                    while True:
                        yield 5
                        self.queue.push(1)
                        self.count += 1

            class Queue:
                def __init__(self):
                    self.depth = 0

                def push(self, item):
                    self.depth += 1
        """})
        run = index.functions["mod.py::Worker.run"]
        assert run.is_generator
        assert len(run.yield_lines) == 1
        assert [(c.chain, c.name) for c in run.calls] \
            == [((("self", "queue")), "push")]
        assert [w.chain for w in run.writes] == [("self", "count")]

    def test_attr_types_from_init_annotation(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Queue:
                def __init__(self):
                    self.depth = 0

            class Owner:
                def __init__(self, queue: "Queue | None"):
                    self.queue = queue
                    self.spare = Queue()
                    self.maybe = Queue() if queue is None else None
        """})
        owner = index.resolve_class("Owner")
        assert owner.attr_types["queue"] == "Queue"
        assert owner.attr_types["spare"] == "Queue"
        assert owner.attr_types["maybe"] == "Queue"

    def test_container_element_type(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Queue:
                def __init__(self):
                    self.items = []

            class Pool:
                def __init__(self, n):
                    self.queues = [Queue() for _ in range(n)]

                def touch(self, i):
                    self.queues[i].items.append(1)
        """})
        pool = index.resolve_class("Pool")
        assert pool.attr_types["queues"] == "Queue"
        touch = index.functions["mod.py::Pool.touch"]
        # Subscript peeling models the element as the container type.
        assert index.receiver_type(("self", "queues"), touch) == "Queue"


class TestResolution:
    def test_self_method_and_typed_attr(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Queue:
                def push(self, item):
                    return item

            class Worker:
                def __init__(self, queue: "Queue"):
                    self.queue = queue

                def go(self):
                    self.helper()
                    self.queue.push(1)

                def helper(self):
                    return None
        """})
        go = index.functions["mod.py::Worker.go"]
        resolved = {index.resolve_call(site, go).qname
                    for site in go.calls}
        assert resolved == {"mod.py::Worker.helper",
                            "mod.py::Queue.push"}

    def test_local_alias_from_self_attr(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Service:
                def predict(self, rows):
                    return rows

            class Dispatcher:
                def __init__(self, service: "Service"):
                    self.service = service

                def execute(self):
                    service = self.service
                    return service.predict([1])
        """})
        execute = index.functions["mod.py::Dispatcher.execute"]
        (site,) = [s for s in execute.calls if s.name == "predict"]
        assert index.resolve_call(site, execute).qname \
            == "mod.py::Service.predict"

    def test_from_import_resolution(self, tmp_path):
        index = make_index(tmp_path, {
            "pkg/util.py": """\
                def helper(x):
                    return x
            """,
            "pkg/main.py": """\
                from pkg.util import helper

                def entry():
                    return helper(1)
            """,
        })
        entry = index.functions["pkg/main.py::entry"]
        (site,) = entry.calls
        assert index.resolve_call(site, entry).qname \
            == "pkg/util.py::helper"

    def test_ambiguous_class_name_resolves_to_none(self, tmp_path):
        index = make_index(tmp_path, {
            "a.py": "class Queue:\n    pass\n",
            "b.py": "class Queue:\n    pass\n",
        })
        assert index.resolve_class("Queue") is None

    def test_base_class_method_lookup(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Base:
                def shared(self):
                    return 1

            class Child(Base):
                def go(self):
                    return self.shared()
        """})
        go = index.functions["mod.py::Child.go"]
        (site,) = go.calls
        assert index.resolve_call(site, go).qname \
            == "mod.py::Base.shared"


class TestReachability:
    def test_transitive_reach_and_path(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            def a():
                return b()

            def b():
                return c()

            def c():
                return 1
        """})
        entry = index.functions["mod.py::a"]
        reach = index.reachable(entry)
        assert set(reach) == {"mod.py::a", "mod.py::b", "mod.py::c"}
        assert index.call_path(reach, "mod.py::c") \
            == ["mod.py::a", "mod.py::b", "mod.py::c"]
        assert reach["mod.py::c"].depth == 2

    def test_depth_bound(self, tmp_path):
        chain = "\n\n".join(
            f"def f{i}():\n    return f{i + 1}()"
            for i in range(MAX_CALL_DEPTH + 3)
        ) + f"\n\ndef f{MAX_CALL_DEPTH + 3}():\n    return 0\n"
        index = make_index(tmp_path, {"mod.py": chain})
        reach = index.reachable(index.functions["mod.py::f0"])
        depths = {r.depth for r in reach.values()}
        assert max(depths) == MAX_CALL_DEPTH
        assert f"mod.py::f{MAX_CALL_DEPTH + 2}" not in reach

    def test_stop_classes_cut_traversal(self, tmp_path):
        index = make_index(tmp_path, {"mod.py": """\
            class Owner:
                def mediate(self):
                    return leaked()

            def leaked():
                return 1

            class Worker:
                def __init__(self, owner: "Owner"):
                    self.owner = owner

                def run(self):
                    yield 1
                    self.owner.mediate()
        """})
        entry = index.functions["mod.py::Worker.run"]
        full = index.reachable(entry)
        scoped = index.reachable(entry,
                                 stop_classes=frozenset({"Owner"}))
        assert "mod.py::leaked" in full
        assert "mod.py::Owner.mediate" not in scoped
        assert "mod.py::leaked" not in scoped

    def test_shared_index_cached_per_project(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        project = Project(tmp_path)
        assert ProgramIndex.for_project(project) \
            is ProgramIndex.for_project(project)
