"""Baseline file: round trips, line-drift stability, corruption."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_VERSION,
    BaselineError,
    apply_baseline,
    baseline_payload,
    load_baseline,
    write_baseline,
)
from repro.analysis.findings import Finding

FINDINGS = [
    Finding("DET001", "a.py", 3, "clock", source_line="time.time()"),
    Finding("EXC001", "b.py", 9, "bare", source_line="except:"),
]


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert write_baseline(FINDINGS, path) == 2
        grandfathered = load_baseline(path)
        assert grandfathered == {
            (f.rule_id, f.fingerprint()) for f in FINDINGS
        }

    def test_apply_filters_only_grandfathered(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(FINDINGS[:1], path)
        fresh, baselined = apply_baseline(
            list(FINDINGS), load_baseline(path)
        )
        assert baselined == 1
        assert fresh == [FINDINGS[1]]

    def test_line_drift_does_not_invalidate(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(FINDINGS, path)
        shifted = Finding("DET001", "a.py", 300, "clock moved",
                          source_line="time.time()")
        fresh, baselined = apply_baseline(
            [shifted], load_baseline(path)
        )
        assert (fresh, baselined) == ([], 1)

    def test_payload_is_deterministic(self):
        assert baseline_payload(FINDINGS) == \
            baseline_payload(list(reversed(FINDINGS)))


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = baseline_payload(FINDINGS)
        payload["version"] = BASELINE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="version"):
            load_baseline(path)

    def test_hand_edited_entries_fail_checksum(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = baseline_payload(FINDINGS)
        payload["findings"][0]["message"] = "edited"
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="checksum"):
            load_baseline(path)

    def test_malformed_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = [{"path": "a.py"}]  # no rule/fingerprint
        payload = baseline_payload([])
        payload["findings"] = entries
        import zlib
        payload["checksum"] = zlib.crc32(json.dumps(
            entries, sort_keys=True, separators=(",", ":")
        ).encode())
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="malformed entry"):
            load_baseline(path)
