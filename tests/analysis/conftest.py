"""Shared helpers for the invariant-checker tests."""

from pathlib import Path

import pytest

from repro.analysis.engine import Project, run_rules
from repro.analysis.rules import select_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: the real repository root (the tree ``python -m repro check`` gates)
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def check_fixture():
    """Run selected rules over a fixture tree; returns (findings,
    suppressed)."""

    def run(name: str, rule_ids: list[str]):
        project = Project(FIXTURES / name)
        return run_rules(project, select_rules(rule_ids))

    return run
