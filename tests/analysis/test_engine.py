"""Engine behavior: pragmas, module paths, parse failures, findings."""

import pytest

from repro.analysis.engine import (
    DEFAULT_PACKAGE,
    FileContext,
    Project,
    parse_pragmas,
    run_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import select_rules


class TestPragmas:
    def test_single_rule(self):
        pragmas = parse_pragmas(["x = 1  # repro: allow DET001"])
        assert pragmas == {1: frozenset({"DET001"})}

    def test_comma_separated(self):
        pragmas = parse_pragmas(["# repro: allow DET001, TRC002"])
        assert pragmas[1] == frozenset({"DET001", "TRC002"})

    def test_non_pragma_comments_ignored(self):
        assert parse_pragmas(["# just a comment", "x = 1"]) == {}

    def test_allowed_checks_line_and_line_above(self):
        source = "\n".join([
            "# repro: allow DET001",
            "x = 1",
            "y = 2",
        ])
        ctx = FileContext(None, "m.py", source)
        assert ctx.allowed("DET001", 1)
        assert ctx.allowed("DET001", 2)
        assert not ctx.allowed("DET001", 3)
        assert not ctx.allowed("DET002", 2)

    def test_suppression_counts(self, check_fixture):
        findings, suppressed = check_fixture("pragmas", ["DET001"])
        # same_line and line_above are suppressed; the unsuppressed
        # call and the wrong-rule pragma still fire.
        assert suppressed == 2
        assert len(findings) == 2
        assert {f.source_line for f in findings} == {
            "return time.perf_counter()",
            "return time.time()  # repro: allow TRC001",
        }


class TestPragmaAnchors:
    def test_pragma_lines_extend_suppression(self, tmp_path):
        """A finding carrying extra pragma anchor lines (the flagged
        function's def/decorator lines) is suppressed by a pragma on
        any of them."""
        source = "\n".join([
            "# repro: allow DET001",     # line 1
            "def helper():",             # line 2
            "    pass",
            "",
            "x = 1",                     # line 5: finding anchor
        ])
        (tmp_path / "m.py").write_text(source + "\n")
        project = Project(tmp_path)
        (ctx,) = project.contexts

        class AnchoredRule:
            rule_id = "DET001"
            hint = ""

            def check_file(self, context):
                yield context.finding("DET001", 5, "anchored",
                                      pragma_lines=(2,))

            def finish(self, project):
                return iter(())

        findings, suppressed = run_rules(project, [AnchoredRule()])
        assert findings == []
        assert suppressed == 1

    def test_rule_hint_stamped_onto_findings(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        project = Project(tmp_path)

        class HintedRule:
            rule_id = "DET001"
            hint = "use the sim clock"

            def check_file(self, context):
                yield context.finding("DET001", 1, "msg")

            def finish(self, project):
                return iter(())

        findings, _ = run_rules(project, [HintedRule()])
        assert findings[0].hint == "use the sim clock"


class TestContextFor:
    def test_lookup_is_a_dict_hit(self, tmp_path):
        pkg = tmp_path / DEFAULT_PACKAGE / "core"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text("a = 1\n")
        (pkg / "b.py").write_text("b = 1\n")
        project = Project(tmp_path)
        ctx = project.context_for("core/b.py")
        assert ctx is not None and ctx.module_path == "core/b.py"
        assert project.context_for("core/missing.py") is None
        # The index is built once, not scanned per call.
        assert project._by_module_path["core/a.py"] \
            is project.context_for("core/a.py")


class TestModulePath:
    def test_strips_package_prefix(self, tmp_path):
        module = tmp_path / DEFAULT_PACKAGE / "core" / "x.py"
        module.parent.mkdir(parents=True)
        module.write_text("x = 1\n")
        project = Project(tmp_path)
        (ctx,) = project.contexts
        assert ctx.relpath == "src/repro/core/x.py"
        assert ctx.module_path == "core/x.py"

    def test_bare_tree_is_its_own_package(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        project = Project(tmp_path)
        (ctx,) = project.contexts
        assert ctx.module_path == "m.py"


class TestParseFailures:
    def test_syntax_error_becomes_eng000_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "fine.py").write_text("x = 1\n")
        project = Project(tmp_path)
        findings, _ = run_rules(project, select_rules(None))
        assert [f.rule_id for f in findings] == ["ENG000"]
        assert findings[0].path == "broken.py"
        # The parseable file still made it into the run.
        assert len(project.contexts) == 1


class TestFinding:
    def test_fingerprint_is_line_drift_stable(self):
        a = Finding("DET001", "m.py", 10, "msg",
                    source_line="t = time.time()")
        b = Finding("DET001", "m.py", 99, "other msg",
                    source_line="t = time.time()")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_depends_on_rule_path_and_content(self):
        base = Finding("DET001", "m.py", 1, "msg", source_line="x")
        assert base.fingerprint() != Finding(
            "DET002", "m.py", 1, "msg", source_line="x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "DET001", "n.py", 1, "msg", source_line="x"
        ).fingerprint()
        assert base.fingerprint() != Finding(
            "DET001", "m.py", 1, "msg", source_line="y"
        ).fingerprint()

    def test_render_form(self):
        finding = Finding("DET001", "m.py", 3, "no clocks")
        assert finding.render() == "m.py:3: DET001 error: no clocks"

    def test_hint_renders_but_never_fingerprints(self):
        bare = Finding("DET001", "m.py", 3, "no clocks",
                       source_line="t = time.time()")
        hinted = Finding("DET001", "m.py", 3, "no clocks",
                         source_line="t = time.time()",
                         hint="use the sim clock")
        assert hinted.fingerprint() == bare.fingerprint()
        assert "hint: use the sim clock" in hinted.render()
        assert hinted.as_dict()["hint"] == "use the sim clock"

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("DET001", "m.py", 1, "msg", severity="fatal")
