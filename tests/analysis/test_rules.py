"""Positive and negative cases for every shipped rule, over the
fixture trees in ``tests/analysis/fixtures/``."""

from repro.analysis.rules import (
    RULE_CLASSES,
    all_rules,
    rules_by_id,
    select_rules,
)

import pytest


def by_file(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(finding.path.split("/")[-1],
                           []).append(finding)
    return grouped


class TestRegistry:
    def test_ids_are_unique_and_well_formed(self):
        ids = [cls.rule_id for cls in RULE_CLASSES]
        assert len(set(ids)) == len(ids)
        for rule_id in ids:
            assert len(rule_id) == 6 and rule_id[:3].isalpha() \
                and rule_id[3:].isdigit()

    def test_expected_rules_present(self):
        assert set(rules_by_id()) == {
            "API001", "CTR001", "DET001", "DET002", "EXC001",
            "OBS001", "PLN001", "QUE001", "RAC001", "RAC002",
            "RAC003", "REP001", "TRC001", "TRC002",
        }

    def test_every_rule_ships_a_fixit_hint(self):
        for cls in RULE_CLASSES:
            assert cls.hint, f"{cls.rule_id} has no fix-it hint"

    def test_all_rules_returns_fresh_instances(self):
        first, second = all_rules(), all_rules()
        assert all(a is not b for a, b in zip(first, second))

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            select_rules(["NOPE99"])


class TestDet001:
    def test_flags_every_wall_clock_form(self, check_fixture):
        findings, _ = check_fixture("det001", ["DET001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_clock.py")
        # time.time, aliased perf_counter, renamed monotonic,
        # datetime.now - one finding each.
        assert len(bad) == 4
        assert all(f.rule_id == "DET001" and f.severity == "error"
                   for f in bad)
        joined = " ".join(f.message for f in bad)
        assert "time.time" in joined
        assert "walltime.perf_counter" in joined
        assert "datetime.now" in joined
        # good_clock.py (time.sleep, simulated ns) and the allowlisted
        # bench/experiments/latency.py produce nothing.
        assert grouped == {}


class TestDet002:
    def test_flags_global_rng_outside_allowlist(self, check_fixture):
        findings, _ = check_fixture("det002", ["DET002"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_random.py")
        # `import random` and `from random import choice`.
        assert len(bad) == 2
        # good_random.py (injected stream) and the allowlisted
        # sim/rng.py produce nothing.
        assert grouped == {}


class TestTrc001:
    def test_unregistered_literal_kind_flagged(self, check_fixture):
        findings, _ = check_fixture("tracing", ["TRC001"])
        assert len(findings) == 1
        assert findings[0].path.endswith("emitter.py")
        assert "bogus_kind" in findings[0].message

    def test_no_registry_means_no_audit(self, check_fixture):
        # A tree without EVENT_KINDS (e.g. the det001 fixture) cannot
        # be audited and must not produce spurious findings.
        findings, _ = check_fixture("det001", ["TRC001"])
        assert findings == []


class TestTrc002:
    def test_dead_registered_kind_flagged(self, check_fixture):
        findings, _ = check_fixture("tracing", ["TRC002"])
        assert len(findings) == 1
        assert findings[0].path.endswith("trace.py")
        assert "never_emitted" in findings[0].message
        # Anchored at the kind's own definition line in the registry.
        assert findings[0].source_line == '"never_emitted",'


class TestApi001:
    def test_drifted_default_flagged_sugar_tolerated(self,
                                                     check_fixture):
        findings, _ = check_fixture("api001", ["API001"])
        assert len(findings) == 1
        (finding,) = findings
        assert finding.path.endswith("facade.py")
        assert "connect" in finding.message
        assert "'syscall'" in finding.message
        # __init__ (kw-only tightening) and connect_default (facade
        # sugar) produced nothing.


class TestCtr001:
    def test_contract_violations(self, check_fixture):
        findings, _ = check_fixture("ctr001", ["CTR001"])
        messages = sorted(f.message for f in findings)
        assert len(findings) == 3
        # LeakyTransport: missing both chains.
        assert any("LeakyTransport.__init__" in m for m in messages)
        assert any("LeakyTransport" in m and "close()" in m
                   for m in messages)
        # HalfClosedTransport: close() without super().close().
        assert any("HalfClosedTransport.close" in m for m in messages)
        # GoodTransport and StatelessTransport produced nothing.
        assert not any("GoodTransport" in m or "StatelessTransport" in m
                       for m in messages)


class TestExc001:
    def test_swallowed_exceptions_flagged(self, check_fixture):
        findings, _ = check_fixture("exc001", ["EXC001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_except.py")
        assert len(bad) == 2
        joined = " ".join(f.message for f in bad)
        assert "bare" in joined
        assert "swallows" in joined
        # good_except.py (named / recorded-and-reraised) and the
        # allowlisted core/persistence.py produce nothing.
        assert grouped == {}


class TestPln001:
    def test_plan_mutations_flagged(self, check_fixture):
        findings, _ = check_fixture("pln001", ["PLN001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_plan.py")
        messages = sorted(f.message for f in bad)
        # CountingSpecializedPlan: per-call counter + re-salting;
        # LazySpecializedPlanV2: element write + nested attribute write.
        assert len(bad) == 4
        assert any("CountingSpecializedPlan.select" in m
                   for m in messages)
        assert any("CountingSpecializedPlan.rebind" in m
                   for m in messages)
        assert sum("LazySpecializedPlanV2" in m for m in messages) == 2
        assert all(f.rule_id == "PLN001" and f.severity == "error"
                   for f in bad)
        # good_plan.py: __init__ writes, locals unpacked from self, and
        # a non-plan compiler class mutating its cache - none flagged.
        assert grouped == {}

    def test_real_specialized_plan_is_frozen(self):
        from repro.analysis.engine import Project, run_rules
        from repro.analysis.rules import select_rules

        from .conftest import REPO_ROOT

        findings, _ = run_rules(
            Project(REPO_ROOT / "src" / "repro" / "core"),
            select_rules(["PLN001"]),
        )
        assert findings == []


class TestObs001:
    def test_span_discipline_violations_flagged(self, check_fixture):
        findings, _ = check_fixture("obs001", ["OBS001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_spans.py")
        messages = sorted(f.message for f in bad)
        # Raw begin/end pair, a stored un-with'ed handle, and a helper
        # call whose handle is stored instead of returned.
        assert len(bad) == 4
        assert any("begin_span" in m for m in messages)
        assert any("end_span" in m for m in messages)
        assert any("span(...)" in m for m in messages)
        assert any("_op_span(...)" in m for m in messages)
        assert all(f.rule_id == "OBS001" and f.severity == "error"
                   for f in bad)
        # good_spans.py: with-items, forwarding *span* helpers, and
        # spans()/open_spans() reads - none flagged.
        assert grouped == {}

    def test_real_tree_is_span_disciplined(self):
        from repro.analysis.engine import Project, run_rules
        from repro.analysis.rules import select_rules

        from .conftest import REPO_ROOT

        findings, _ = run_rules(
            Project(REPO_ROOT / "src" / "repro"),
            select_rules(["OBS001"]),
        )
        assert findings == []


class TestQue001:
    def test_kernel_calls_in_sim_processes_flagged(self, check_fixture):
        findings, _ = check_fixture("que001", ["QUE001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_process.py")
        messages = sorted(f.message for f in bad)
        # GreedyWorker.run's in-line predict_batch and
        # trainer_process's kernel update.
        assert len(bad) == 2
        assert any("GreedyWorker" not in m and "run" in m
                   and "predict_batch" in m for m in messages)
        assert any("trainer_process" in m and "update" in m
                   for m in messages)
        assert all(f.rule_id == "QUE001" and f.severity == "error"
                   for f in bad)
        # The interprocedural pass adds the helper-path catch in
        # bench/indirect.py (see test_concurrency.py for its shape).
        indirect = grouped.pop("indirect.py")
        assert len(indirect) == 1
        # good_process.py (submit/wait, dict .update, plain-function
        # kernel entry, nested-def helper) and the path-exempt
        # core/serving/dispatch.py produce nothing.
        assert grouped == {}

    def test_real_tree_has_single_kernel_entry_site(self):
        from repro.analysis.engine import Project, run_rules
        from repro.analysis.rules import select_rules

        from .conftest import REPO_ROOT

        findings, _ = run_rules(
            Project(REPO_ROOT / "src" / "repro"),
            select_rules(["QUE001"]),
        )
        assert findings == []


class TestRep001:
    def test_replica_mutations_flagged(self, check_fixture):
        findings, _ = check_fixture("rep001", ["REP001"])
        grouped = by_file(findings)
        bad = grouped.pop("bad_replica.py")
        messages = sorted(f.message for f in bad)
        # LeakyShardReplica.update + TrainerReplica.train (defined
        # mutators) and EagerFollower's two write-through calls.
        assert len(bad) == 4
        assert any("LeakyShardReplica.update" in m for m in messages)
        assert any("TrainerReplica.train" in m for m in messages)
        assert sum("EagerFollower" in m for m in messages) == 2
        assert all(f.rule_id == "REP001" and f.severity == "error"
                   for f in bad)
        # good_replica.py: dict .update on a cache, load_state
        # restoration, and a non-replica coordinator training its own
        # domains - none flagged.
        assert grouped == {}
