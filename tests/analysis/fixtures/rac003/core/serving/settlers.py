"""Future settlement reachable from two processes (RAC003)."""


class CompletionFuture:
    def __init__(self):
        self.done = False

    def complete(self, value):
        self.done = True
        return value

    def fail(self, error):
        self.done = True
        return error


class PendingSet:
    def __init__(self):
        self.requests = []

    def drain(self):
        return []

    def expired(self):
        return []


class DoubleSettler:
    """Worker and reaper both reach the same settle site."""

    def __init__(self, engine, pending: "PendingSet"):
        self.engine = engine
        self.pending = pending

    def start(self):
        spawn(self.engine, self._worker(), name="worker")
        spawn(self.engine, self._reaper(), name="reaper")

    def _worker(self):
        while True:
            yield 10
            for request in self.pending.drain():
                self._finish(request)

    def _reaper(self):
        while True:
            yield 100
            for request in self.pending.expired():
                self._finish(request)

    def _finish(self, request):
        # RAC003: whichever of worker/reaper gets here second settles
        # an already-settled future.
        request.future.complete(None)


class LocalSettler:
    """Settles only futures it constructs: the creator owns them."""

    def __init__(self, engine):
        self.engine = engine

    def start(self):
        spawn(self.engine, self._issue(), name="local-a")
        spawn(self.engine, self._issue_more(), name="local-b")

    def _issue(self):
        while True:
            yield 5
            self._resolve_now()

    def _issue_more(self):
        while True:
            yield 7
            self._resolve_now()

    def _resolve_now(self):
        future = CompletionFuture()
        future.complete(None)
        return future


class SingleSettler:
    """One process, one settle path: single ownership, clean."""

    def __init__(self, engine, pending: "PendingSet"):
        self.engine = engine
        self.pending = pending

    def start(self):
        spawn(self.engine, self._worker(), name="single")

    def _worker(self):
        while True:
            yield 10
            for request in self.pending.drain():
                request.future.complete(None)
