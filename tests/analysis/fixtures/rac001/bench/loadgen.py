"""Two sim processes (and one sync path) sharing unowned state."""


class SharedStats:
    def __init__(self):
        self.served = 0
        self.dropped = 0


class PredictWorker:
    def __init__(self, engine, stats: "SharedStats"):
        self.engine = engine
        self.stats = stats
        self.local_count = 0

    def start(self):
        return spawn(self.engine, self._run(), name="predict")

    def _run(self):
        while True:
            yield 10
            # RAC001: UpdateWorker._run writes the same attribute.
            self.stats.served += 1
            # Private per-process state: single writer, clean.
            self.local_count += 1


class UpdateWorker:
    def __init__(self, engine, stats: "SharedStats"):
        self.engine = engine
        self.stats = stats

    def start(self):
        return spawn(self.engine, self._run(), name="update")

    def _run(self):
        while True:
            yield 25
            # RAC001: PredictWorker._run writes the same attribute.
            self.stats.served += 1


class DropWorker:
    def __init__(self, engine, stats: "SharedStats"):
        self.engine = engine
        self.stats = stats

    def start(self):
        return spawn(self.engine, self._run(), name="drop")

    def _run(self):
        while True:
            yield 5
            # RAC001: reset_stats also writes dropped, synchronously.
            self.stats.dropped += 1


def reset_stats(stats: "SharedStats"):
    """Synchronous path racing DropWorker's in-flight decrements."""
    stats.dropped = 0


class RequestQueue:
    """A sanctioned owner: its internal writes are mediated by name."""

    def __init__(self):
        self.depth = 0

    def push(self, item):
        self.depth += 1
        return item


class QueueFeeder:
    def __init__(self, engine, queue: "RequestQueue"):
        self.engine = engine
        self.queue = queue

    def start(self):
        return spawn(self.engine, self._run(), name="feeder-a")

    def start_second(self):
        return spawn(self.engine, self._feed_more(), name="feeder-b")

    def _run(self):
        while True:
            yield 1
            # Clean: the write happens inside the sanctioned owner.
            self.queue.push(object())

    def _feed_more(self):
        while True:
            yield 2
            self.queue.push(object())
