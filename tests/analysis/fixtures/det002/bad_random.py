"""Fixture: process-global RNG use DET002 must catch."""

import random
from random import choice


def draw(options):
    return choice(options) if options else random.random()
