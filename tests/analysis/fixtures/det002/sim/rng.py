"""Fixture: the allowlisted seeded-stream constructor module."""

import random


def make_stream(seed):
    return random.Random(seed)
