"""Fixture: seeded-stream use DET002 must accept."""


def draw(rng):
    # The stream is injected, already seeded; no global RNG touched.
    return rng.random()
