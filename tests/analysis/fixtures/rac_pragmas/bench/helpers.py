"""Pragma anchoring edge cases for interprocedural findings.

The QUE001 interprocedural pass anchors its finding at the kernel call
site inside the helper, but also honors a pragma on the helper's
``def`` line or any of its decorator lines (suppressing the whole
helper is the reviewable unit when the call spans several lines).
"""


def traced(fn):
    return fn


@traced  # repro: allow QUE001
def helper_decorator_pragma(service, rows):
    """Suppressed: the pragma sits on the decorator line."""
    return service.predict_batch(rows)


def helper_def_pragma(service, rows):  # repro: allow QUE001
    """Suppressed: the pragma sits on the def line."""
    return service.predict_batch(rows)


def helper_multiline_first_line(service, rows):
    """Suppressed: the finding anchors to the call's *first* line,
    where the pragma sits."""
    return service.predict_batch(  # repro: allow QUE001
        rows,
        batch_hint=len(rows),
    )


def helper_multiline_last_line(service, rows):
    """NOT suppressed: a pragma on the call's closing line misses the
    first-line anchor (and the def line carries no pragma)."""
    return service.predict_batch(
        rows,
        batch_hint=len(rows),  # repro: allow QUE001
    )


class PragmaWorker:
    def __init__(self, engine, service):
        self.engine = engine
        self.service = service

    def start(self):
        return spawn(self.engine, self._run(), name="pragma-worker")

    def _run(self):
        while True:
            yield 10
            helper_decorator_pragma(self.service, [1])
            helper_def_pragma(self.service, [2])
            helper_multiline_first_line(self.service, [3])
            helper_multiline_last_line(self.service, [4])
