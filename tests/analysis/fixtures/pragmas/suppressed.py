"""Fixture: pragma suppression on the line and the line above."""

import time


def same_line():
    return time.time()  # repro: allow DET001


def line_above():
    # repro: allow DET001, DET002
    return time.monotonic()


def unsuppressed():
    return time.perf_counter()


def wrong_rule():
    return time.time()  # repro: allow TRC001
