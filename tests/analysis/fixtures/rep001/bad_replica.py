"""Fixture: replica types that mutate learned state (REP001 hits)."""


class LeakyShardReplica:
    """Defines a mutator on a replica type: one finding."""

    def __init__(self):
        self.followers = {}

    def update(self, features, direction):  # REP001: replicas never learn
        for follower in self.followers.values():
            follower.apply(features, direction)


class EagerFollower:
    """Calls update() on model-side receivers: two findings."""

    def __init__(self, domain):
        self.domain = domain

    def refresh(self):
        # Writing through to the domain forks the replicated state.
        self.domain.model.update([1, 2], True)

    def train_ahead(self, shard):
        for name in shard.domains:
            shard.domains[name].update([0, 0], False)


class TrainerReplica:
    """Defines train(): one finding."""

    def train(self, batch):
        return len(batch)
