"""Fixture: contract-compliant replica machinery (no REP001 findings)."""


class CleanShardReplica:
    """Read-only follower bookkeeping: snapshots in, predictions out."""

    def __init__(self, shard_id):
        self.shard_id = shard_id
        self.followers = {}
        self._cache = {}

    def sync(self, shard):
        # Dict mutation on a plain container is not model training.
        self._cache.update({"last_sync": shard.generation})
        for name, domain in shard.domains.items():
            self.followers[name] = domain.model.to_state()

    def predict(self, name, features):
        return self.followers[name]["bias"]


class FollowerDirectory:
    """Holds follower snapshots; load_state is restoration, not learning."""

    def restore(self, domain, snapshot):
        domain.model.load_state(snapshot)


class Coordinator:
    """Not a replica type: may train its own domains freely."""

    def __init__(self, domains):
        self.domains = domains

    def update(self, name, features, direction):
        self.domains[name].update(features, direction)
