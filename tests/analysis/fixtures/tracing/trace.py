"""Fixture: a miniature trace-kind registry (TRC001/TRC002 target)."""

EVENT_KINDS = frozenset({
    "predict",
    "update",
    "never_emitted",
})
