"""Fixture: emission sites, registered and not."""


class Component:
    def __init__(self, tracer):
        self.tracer = tracer

    def ok_positional(self):
        self.tracer.record("predict", domain="d")

    def ok_keyword(self):
        self.tracer.record(kind="update", domain="d")

    def bad_unregistered(self):
        self.tracer.record("bogus_kind", domain="d")

    def dynamic_is_skipped(self, kind):
        # Not a literal: TRC001 cannot and must not judge it.
        self.tracer.record(kind, domain="d")

    def not_an_emission(self, stats):
        # ``record`` on a non-tracer receiver is out of scope.
        stats.record("whatever")
