"""Fixture: the allowlisted best-effort recovery path."""


def recover(load):
    try:
        load()
    except:
        return False
    return True
