"""Fixture: swallowed exceptions EXC001 must catch."""


def swallow_everything(work):
    try:
        work()
    except:
        return None


def swallow_silently(work):
    try:
        work()
    except Exception:
        pass
