"""Fixture: exception handling EXC001 must accept."""


def named(work, log):
    try:
        work()
    except ValueError as exc:
        log.append(exc)


def broad_but_handled(work, log):
    # Broad catch is fine when the fault is recorded, not dropped.
    try:
        work()
    except Exception as exc:
        log.append(exc)
        raise
