"""Fixture: the transport close()/super().__init__ contract (CTR001)."""


class Transport:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class GoodTransport(Transport):
    """Stateful, fully contract-compliant: no findings."""

    def __init__(self):
        super().__init__()
        self.cache = {}

    def close(self):
        super().close()
        self.cache.clear()


class StatelessTransport(Transport):
    """No __init__: the base contract holds untouched, no findings."""

    def ping(self):
        return not self.closed


class LeakyTransport(Transport):
    """Adds state but neither chains __init__ nor overrides close():
    two findings."""

    def __init__(self):
        self.buffer = []


class HalfClosedTransport(Transport):
    """Overrides close() without chaining super().close(): one
    finding."""

    def __init__(self):
        super().__init__()
        self.buffer = []

    def close(self):
        self.buffer.clear()
