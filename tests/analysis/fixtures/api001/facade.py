"""Fixture: a facade that drifted from its kernel (API001)."""

from kernel import ShardedService


class PredictionService(ShardedService):
    # Parity: same names, order, defaults (num_shards merely made
    # keyword-only, which API001 deliberately tolerates).
    def __init__(self, config=None, *, num_shards=1):
        super().__init__(config=config, num_shards=num_shards)

    # Drift: the default changed ("vdso" -> "syscall").
    def connect(self, name, transport="syscall", batch_size=None):
        return super().connect(name, transport, batch_size)

    # Facade-only sugar: not compared against anything.
    def connect_default(self, name):
        return self.connect(name)
