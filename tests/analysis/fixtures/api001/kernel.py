"""Fixture: the kernel side of a facade/kernel pair (API001)."""


class ShardedService:
    def __init__(self, config=None, num_shards=1):
        self.config = config
        self.num_shards = num_shards

    def connect(self, name, transport="vdso", batch_size=None):
        return (name, transport, batch_size)

    def kernel_only(self, shard_id):
        return shard_id
