"""Fixture: legitimate uses of ``time`` that DET001 must not flag."""

import time


def fine(account):
    # Non-clock members of the time module are fine.
    time.sleep(0)
    # Simulated nanoseconds come from accounting objects, not the host.
    return account.total_ns
