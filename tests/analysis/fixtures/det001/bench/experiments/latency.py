"""Fixture: the allowlisted wall-clock harness path."""

import time


def measure():
    start = time.perf_counter_ns()
    return time.perf_counter_ns() - start
