"""Fixture: every way DET001 must catch a wall-clock read."""

import time
import time as walltime
from datetime import datetime
from time import monotonic as mono


def stamp():
    a = time.time()                  # plain module call
    b = walltime.perf_counter()      # aliased module call
    c = mono()                       # from-imported, renamed
    d = datetime.now()               # host timestamp
    return a + b + c, d
