"""Sim processes that enter the kernel directly (both flagged)."""


class GreedyWorker:
    def __init__(self, service, queue):
        self.service = service
        self.queue = queue

    def run(self):
        """A generator body that scores its batch in-line."""
        while True:
            yield self.queue.nonempty.wait()
            batch = self.queue.drain(8)
            # QUE001: blocking kernel entry inside the event loop.
            scores = self.service.predict_batch(
                [(request.domain, request.features) for request in batch]
            )
            del scores


def trainer_process(kernel_service, records):
    """A module-level generator writing to the kernel in-line."""
    for domain, features, direction in records:
        yield 10.0
        # QUE001: kernel write from a sim process.
        kernel_service.update(domain, features, direction)
