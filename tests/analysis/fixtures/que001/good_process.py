"""Sim processes and helpers that stay inside the contract (clean)."""


class SubmittingClient:
    def __init__(self, pipeline):
        self.pipeline = pipeline
        self.seen = {}

    def run(self):
        """A closed-loop client: submit, wait on the future."""
        for index in range(10):
            future = self.pipeline.submit("dom", [index, index + 1])
            yield future.wait()
            # A dict update inside a generator is not a kernel call.
            self.seen.update({index: future.result()})


def warm_cache(service, rows):
    """Kernel batch entry from a *plain* function is fine - only sim
    processes (generator bodies) are in scope."""
    return service.predict_batch(rows)


class DeferredScorer:
    def __init__(self, service):
        self.service = service

    def run(self):
        """A generator whose nested helper is invoked by a non-process
        caller later; the nested def's body is out of scope."""
        def score_later(rows):
            return self.service.predict_batch(rows)

        yield 5.0
        return score_later
