"""The sanctioned kernel-entry site (path-exempt, clean)."""


class Dispatcher:
    def __init__(self, service, queue):
        self.service = service
        self.queue = queue

    def run(self):
        while True:
            yield self.queue.nonempty.wait()
            batch = self.queue.drain(32)
            yield 68.0 + 4.19 * len(batch)
            # Exempt: this file is the dispatcher implementation.
            self.service.predict_batch(
                [(request.domain, request.features) for request in batch]
            )
            for request in batch:
                self.service.update(request.domain, request.features,
                                    request.direction)
