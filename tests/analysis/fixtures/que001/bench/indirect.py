"""A process reaching the kernel through a helper (interproc QUE001)."""


def score_helper(service, rows):
    """Plain function, so the syntactic pass ignores it - but it is
    one call away from a sim process's event-loop step."""
    # QUE001 (interprocedural): kernel entry reachable from _run.
    return service.predict_batch(rows)


class IndirectWorker:
    def __init__(self, engine, service):
        self.engine = engine
        self.service = service

    def start(self):
        return spawn(self.engine, self._run(), name="indirect")

    def _run(self):
        while True:
            yield 10
            score_helper(self.service, [("dom", (1, 2))])
