"""OBS001-clean span usage: with-items and forwarding helpers only."""


class Component:
    def __init__(self, tracer):
        self._tracer = tracer

    def _op_span(self, op):
        # Forwarding helper: directly returns the handle for the
        # caller's `with`, sanctioned because the function is *span*.
        return self._tracer.span(f"component.{op}", domain="d")

    def predict(self, features):
        with self._op_span("predict"):
            return sum(features)

    def update(self, features):
        with self._tracer.span("component.update", domain="d"):
            return len(features)

    def nested(self, rows):
        with self._tracer.span("outer"):
            with self._tracer.span("inner", detail={"rows": len(rows)}):
                return rows

    def snapshot(self):
        # Attribute names that merely *mention* spans are not opens.
        return self._tracer.spans(), self._tracer.open_spans()
