"""OBS001 violations: raw begin/end pairs and un-with'ed span calls."""


class Leaky:
    def __init__(self, tracer):
        self._tracer = tracer

    def manual_pair(self, features):
        span = self._tracer.begin_span("leaky.predict")  # OBS001 x1
        try:
            return sum(features)
        finally:
            self._tracer.end_span(span)  # OBS001 x2

    def stored_handle(self):
        handle = self._tracer.span("leaky.stored")  # OBS001 x3
        handle.__enter__()
        return handle

    def helper_not_returned(self):
        # A *span* helper sanctions only calls it directly returns.
        handle = self._op_span("leaky")  # OBS001 x4
        return handle

    def _op_span(self, op):
        return self._tracer.span(f"leaky.{op}")
