"""Fixture: specialized plans that mutate after compile (PLN001 hits)."""


class CountingSpecializedPlan:
    """Caches per-call state on self: two findings."""

    def __init__(self, signature, salts):
        self.signature = signature
        self.salts = salts
        self.calls = 0

    def select(self, row):
        self.calls += 1  # PLN001: shared plans must not count per tenant
        return tuple(row)

    def rebind(self, salts):
        self.salts = salts  # PLN001: re-salting forks other tenants


class LazySpecializedPlanV2:
    """Memoizes through nested/element writes: two findings."""

    def __init__(self):
        self.tables = {}
        self.stats = type("S", (), {"hits": 0})()

    def score_rows(self, flat, bias, rows):
        self.tables["last"] = rows  # PLN001: element write to owned state
        return [bias for _row in rows]

    def touch(self):
        self.stats.hits = 1  # PLN001: nested attribute write
