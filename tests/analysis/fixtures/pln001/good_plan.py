"""Fixture: frozen specialized plans and unrelated classes (no PLN001)."""


class CleanSpecializedPlan:
    """All writes in __init__; methods only read self."""

    def __init__(self, signature, salts):
        self.signature = signature
        self.salts = salts

    def select(self, row):
        # Locals (even unpacked from self) are not instance mutation.
        salts = self.salts
        selected = [value ^ salt for value, salt in zip(row, salts)]
        return tuple(selected)

    def score_rows(self, flat, bias, rows):
        scores = []
        for row in rows:
            total = bias
            for index in self.select(row):
                total += flat[index % len(flat)]
            scores.append(total)
        return scores


class PlanCompilerLike:
    """Not a SpecializedPlan: mutable caches are its whole job."""

    def __init__(self):
        self.plans = {}
        self.hits = 0

    def plan_for(self, signature):
        self.hits += 1
        return self.plans.get(signature)
