"""Check-then-act across a yield point (RAC002 positive + negative)."""


class BoundedQueue:
    def __init__(self):
        self.depth = 0
        self.items = []


class BadAdmitter:
    """Checks queue depth, yields, then acts on the stale check."""

    def __init__(self, engine, queue: "BoundedQueue"):
        self.engine = engine
        self.queue = queue
        self.window = 50

    def start(self):
        return spawn(self.engine, self._admit_loop(), name="bad-admit")

    def _admit_loop(self):
        while True:
            if self.queue.depth < 8:
                yield self.window
                # RAC002: the dispatcher may have refilled the queue
                # while we slept on the yield above.
                self.queue.items.append(object())
            else:
                yield self.window


class GoodAdmitter:
    """Re-reads the guarded state after the yield before acting."""

    def __init__(self, engine, queue: "BoundedQueue"):
        self.engine = engine
        self.queue = queue
        self.window = 50

    def start(self):
        return spawn(self.engine, self._admit_loop(), name="good-admit")

    def _admit_loop(self):
        while True:
            if self.queue.depth < 8:
                yield self.window
                if self.queue.depth < 8:
                    self.queue.items.append(object())
            else:
                yield self.window


class AtomicAdmitter:
    """Check and act in one engine step: no yield between them."""

    def __init__(self, engine, queue: "BoundedQueue"):
        self.engine = engine
        self.queue = queue

    def start(self):
        return spawn(self.engine, self._admit_loop(), name="atomic")

    def _admit_loop(self):
        while True:
            if self.queue.depth < 8:
                self.queue.items.append(object())
            yield 10
