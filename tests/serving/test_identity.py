"""The refactor's safety net: serve mode is the same computation.

A 1-client, batch-window-0 serve run must be *bit-identical* to the
synchronous scalar path - scores, per-domain prediction stats, and
weight generations - because the pipeline is a frontend over the same
kernel, not a second implementation.  Hypothesis drives arbitrary
predict/update interleavings over 1/2/4 shards and multiple domains,
and a recorded closed-loop :class:`LoadGenerator` run is replayed
synchronously to pin the real harness, not just hand-built streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.loadgen import LoadGenerator, LoadSpec
from repro.core.kernel.service import ShardedService
from repro.core.serving import ServingConfig, ServingPipeline

DOMAINS = ("alpha", "beta", "gamma")


def op_streams():
    """(domain index, op, features, direction) interleavings."""
    return st.lists(
        st.tuples(
            st.integers(0, len(DOMAINS) - 1),
            st.sampled_from(["predict", "update"]),
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            st.booleans(),
        ),
        min_size=1, max_size=40,
    )


def build_service(num_shards):
    service = ShardedService(num_shards=num_shards)
    for name in DOMAINS:
        service.create_domain(name)
    return service


def state_of(service):
    return {
        name: (service.domain(name).stats,
               service.domain(name).generation)
        for name in DOMAINS
    }


def run_sync(service, stream):
    scores = []
    for index, op, features, direction in stream:
        if op == "predict":
            scores.append(service.predict(DOMAINS[index],
                                          list(features)))
        else:
            service.update(DOMAINS[index], list(features), direction)
            scores.append(None)
    return scores


def run_served(service, stream, batch_window_ns=0.0, max_batch=32):
    pipeline = ServingPipeline(
        service, ServingConfig(max_batch=max_batch,
                               batch_window_ns=batch_window_ns))
    futures = []
    for index, op, features, direction in stream:
        if op == "predict":
            futures.append(pipeline.submit(DOMAINS[index],
                                           list(features)))
        else:
            futures.append(pipeline.submit(DOMAINS[index],
                                           list(features), op="update",
                                           direction=direction))
    pipeline.run()
    return [future.result() for future in futures]


class TestScalarIdentity:
    @settings(max_examples=25, deadline=None)
    @given(stream=op_streams(), num_shards=st.sampled_from([1, 2, 4]))
    def test_window_zero_is_the_synchronous_path(self, stream,
                                                 num_shards):
        svc_sync = build_service(num_shards)
        svc_serve = build_service(num_shards)
        assert run_sync(svc_sync, stream) == \
            run_served(svc_serve, stream)
        assert state_of(svc_sync) == state_of(svc_serve)

    @settings(max_examples=15, deadline=None)
    @given(stream=op_streams(), num_shards=st.sampled_from([1, 2]),
           window=st.sampled_from([100.0, 1000.0]),
           max_batch=st.sampled_from([2, 8]))
    def test_batched_windows_preserve_results(self, stream, num_shards,
                                              window, max_batch):
        """Micro-batching changes *when* work runs, never what it
        computes: per-shard FIFO keeps same-domain order, so scores
        and final state still match the synchronous replay."""
        svc_sync = build_service(num_shards)
        svc_serve = build_service(num_shards)
        assert run_sync(svc_sync, stream) == \
            run_served(svc_serve, stream, batch_window_ns=window,
                       max_batch=max_batch)
        assert state_of(svc_sync) == state_of(svc_serve)


class TestClosedLoopHarnessIdentity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50), num_shards=st.sampled_from([1, 2, 4]))
    def test_one_client_window_zero_replays_synchronously(self, seed,
                                                          num_shards):
        """Record what the real 1-client closed-loop harness submits,
        replay it synchronously on a twin service, and demand
        bit-identical scores, stats, and generations."""
        spec = LoadSpec(clients=1, requests=60, domains=4)
        service = build_harness_service(spec, num_shards)
        pipeline = ServingPipeline(service, ServingConfig())
        recorded = []
        inner_submit = pipeline.submit

        def recording_submit(domain, features, op="predict",
                             direction=False, client_id=""):
            future = inner_submit(domain, features, op=op,
                                  direction=direction,
                                  client_id=client_id)
            recorded.append((domain, list(features), op, direction,
                             future))
            return future

        pipeline.submit = recording_submit
        generator = LoadGenerator(spec, seed=seed)
        generator.start_closed_loop(pipeline)
        pipeline.run()
        assert len(recorded) == spec.requests
        assert generator.snapshot() == {
            "issued": spec.requests,
            "completed_ok": spec.requests,
            "shed": 0, "failed": 0,
        }

        twin = build_harness_service(spec, num_shards)
        for domain, features, op, direction, future in recorded:
            if op == "predict":
                assert future.result() == twin.predict(domain,
                                                       features)
            else:
                twin.update(domain, features, direction)
                assert future.result() is None
        for name in spec.domain_names():
            assert service.domain(name).stats == \
                twin.domain(name).stats
            assert service.domain(name).generation == \
                twin.domain(name).generation


def build_harness_service(spec, num_shards):
    service = ShardedService(num_shards=num_shards)
    for name in spec.domain_names():
        service.create_domain(name)
    return service
