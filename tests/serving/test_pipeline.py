"""Unit coverage for the event-driven serving pipeline.

The issue/complete split end to end: futures, queue back-pressure,
micro-batch triggers, the client ``submit`` family (sync degrade and
resilient fallback), and the queue/batch/shed visibility surfaces.
"""

import pytest

from repro.core import (
    PredictionService,
    PSSConfig,
    ResilienceConfig,
)
from repro.core.errors import ConfigError, RequestShedError
from repro.core.kernel.admission import AdmissionController
from repro.core.kernel.service import ShardedService
from repro.core.serving import (
    CompletionFuture,
    ServingConfig,
    ServingPipeline,
)

FEATURES = [3, 5]


def build(num_shards=1, admission=None, **config_kw):
    service = ShardedService(num_shards=num_shards,
                            admission=admission)
    service.create_domain("d")
    pipeline = ServingPipeline(service,
                               ServingConfig(**config_kw))
    return service, pipeline


class TestCompletionFuture:
    def test_completes_once_and_reports_latency(self):
        future = CompletionFuture(submitted_ns=10.0)
        assert not future.done
        future.complete(7, ts_ns=25.0)
        assert future.done
        assert future.result() == 7
        assert future.latency_ns == 15.0
        with pytest.raises(RuntimeError):
            future.complete(8)

    def test_failed_future_reraises(self):
        future = CompletionFuture()
        future.fail(RequestShedError("queue_full", "d", 0))
        assert future.done
        assert isinstance(future.error, RequestShedError)
        with pytest.raises(RequestShedError):
            future.result()

    def test_done_callback_fires_immediately_when_settled(self):
        future = CompletionFuture()
        future.complete(1)
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]


class TestPipelineFlow:
    def test_submit_completes_with_kernel_results(self):
        service, pipeline = build()
        reference = ShardedService()
        reference.create_domain("d")

        first = pipeline.submit("d", FEATURES)
        write = pipeline.submit("d", FEATURES, op="update",
                                direction=True)
        second = pipeline.submit("d", FEATURES)
        assert not first.done  # nothing runs until the engine does
        pipeline.run()

        expected_first = reference.predict("d", FEATURES)
        reference.update("d", FEATURES, True)
        expected_second = reference.predict("d", FEATURES)
        assert first.result() == expected_first
        assert write.result() is None
        assert second.result() == expected_second
        assert service.domain("d").stats == \
            reference.domain("d").stats
        snap = pipeline.snapshot()
        assert snap["submitted"] == 3
        assert snap["completed"] == 3
        assert snap["in_flight"] == 0
        assert snap["failed"] == snap["shed"] == 0

    def test_completion_charges_simulated_time(self):
        _, pipeline = build()
        future = pipeline.submit("d", FEATURES)
        pipeline.run()
        # One scalar crossing: syscall_ns + 1 row of vdso_predict_ns.
        assert future.latency_ns == pytest.approx(72.19)
        assert pipeline.engine.now > 0

    def test_unknown_op_rejected(self):
        _, pipeline = build()
        with pytest.raises(ConfigError):
            pipeline.submit("d", FEATURES, op="train")

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServingConfig(queue_limit=-1)
        with pytest.raises(ConfigError):
            ServingConfig(slo_eval_interval_ns=0.0)


class TestBatchingTriggers:
    def test_window_zero_dispatches_scalar_batches(self):
        _, pipeline = build(batch_window_ns=0.0)
        for _ in range(5):
            pipeline.submit("d", FEATURES)
        pipeline.run()
        stats = pipeline.batch_stats()
        assert stats["batches"] == 5
        assert stats["rows"] == 5
        assert stats["flush_timeouts"] == 0

    def test_size_trigger_fills_batches_under_wide_window(self):
        _, pipeline = build(max_batch=4, batch_window_ns=1e6)
        for _ in range(8):
            pipeline.submit("d", FEATURES)
        pipeline.run()
        stats = pipeline.batch_stats()
        assert stats["batches"] == 2
        assert stats["rows"] == 8
        assert stats["flush_timeouts"] == 0

    def test_timeout_trigger_flushes_partial_batch(self):
        _, pipeline = build(max_batch=32, batch_window_ns=200.0)
        pipeline.submit("d", FEATURES)
        pipeline.submit("d", FEATURES)
        pipeline.run()
        stats = pipeline.batch_stats()
        assert stats["batches"] == 1
        assert stats["rows"] == 2
        assert stats["flush_timeouts"] == 1

    def test_batched_run_matches_scalar_results(self):
        rows = [[i % 4, (i * 3) % 4] for i in range(12)]
        outcomes = []
        for window in (0.0, 500.0):
            _, pipeline = build(max_batch=8, batch_window_ns=window)
            futures = [pipeline.submit("d", row) for row in rows]
            pipeline.run()
            outcomes.append([f.result() for f in futures])
        assert outcomes[0] == outcomes[1]


class TestBackPressure:
    def test_full_queue_sheds_at_admission(self):
        admission = AdmissionController()
        service, pipeline = build(admission=admission, queue_limit=2)
        futures = [pipeline.submit("d", FEATURES) for _ in range(5)]
        shed = [f for f in futures if f.done]
        assert len(shed) == 3  # refused synchronously at submit
        for future in shed:
            assert isinstance(future.error, RequestShedError)
            assert future.error.reason == "queue_full"
        assert admission.sheds_enforced == 3
        pipeline.run()
        snap = pipeline.snapshot()
        assert snap["completed"] == 2
        assert snap["shed"] == 3
        assert snap["queues"][0]["shed"] == 3

    def test_depth_rule_holds_without_admission_controller(self):
        _, pipeline = build(queue_limit=1)
        first = pipeline.submit("d", FEATURES)
        second = pipeline.submit("d", FEATURES)
        assert not first.done
        assert second.error is not None
        assert second.error.reason == "queue_full"

    def test_unbounded_queue_never_sheds(self):
        _, pipeline = build(queue_limit=0)
        for _ in range(64):
            pipeline.submit("d", FEATURES)
        pipeline.run()
        assert pipeline.shed_count == 0
        assert pipeline.completed == 64


class TestVisibility:
    def test_snapshot_and_summaries_carry_serving_state(self):
        admission = AdmissionController()
        service, pipeline = build(admission=admission, queue_limit=2)
        for _ in range(5):
            pipeline.submit("d", FEATURES)
        pipeline.run()
        summaries = pipeline.annotate_summaries(
            service.shard_summaries())
        serving = next(s["serving"] for s in summaries
                       if "serving" in s)
        assert serving["enqueued"] == 2
        assert serving["shed"] == 3
        assert serving["batches"] == 2
        from repro.bench.tables import shard_table
        rendered = shard_table(summaries)
        assert "shed" in rendered and "max-q" in rendered

    def test_shard_table_without_serving_block_unchanged(self):
        service = ShardedService()
        service.create_domain("d")
        from repro.bench.tables import shard_table
        assert "max-q" not in shard_table(service.shard_summaries())


class TestClientSubmit:
    def test_submit_degrades_to_sync_without_pipeline(self):
        service = PredictionService()
        client = service.connect("d",
                                 config=PSSConfig(num_features=2))
        future = client.submit(FEATURES)
        assert future.done
        assert future.result() == client.predict(FEATURES)
        update = client.submit_update(FEATURES, True)
        assert update.done and update.result() is None
        client.flush()  # sync updates ride the transport's batch
        assert service.domain("d").generation == 1

    def test_submit_routes_through_attached_pipeline(self):
        service = PredictionService()
        client = service.connect("d",
                                 config=PSSConfig(num_features=2))
        pipeline = ServingPipeline(service)
        client.attach_pipeline(pipeline)
        future = client.submit(FEATURES)
        assert not future.done
        pipeline.run()
        assert future.done
        client.attach_pipeline(None)
        assert client.submit(FEATURES).done  # detached: sync again

    def test_resilient_submit_falls_back_on_shed(self):
        service = PredictionService(admission=AdmissionController())
        client = service.connect(
            "d", config=PSSConfig(num_features=2),
            resilience=ResilienceConfig(), fallback=-7,
        )
        pipeline = ServingPipeline(
            service, ServingConfig(queue_limit=2))
        client.attach_pipeline(pipeline)
        predicts = [client.submit(FEATURES) for _ in range(4)]
        update = client.submit_update(FEATURES, True)
        pipeline.run()
        # 2 admitted, served by the kernel; the rest degraded.
        scores = [f.result() for f in predicts]
        assert scores.count(-7) == 2
        assert update.result() is None
        assert client.stats.shed_requests == 3
        assert client.stats.fallback_predictions == 2
        assert client.stats.dropped_updates == 1
        assert all(f.error is None for f in predicts)
