"""Serve mode is deterministic in the seed, byte for byte.

``BENCH_serving.json`` is a CI artifact diffed across runs, so the
guarantee is stronger than "same numbers": the same ``--seed`` must
serialize to the identical byte string, and per-shard shed/batch
counters must be stable across reruns at every shard count.
"""

import json

from repro.bench.experiments.serve import (
    build_payload,
    run_point,
    validate_bench_serving,
    write_payload,
)


def dumps(payload):
    return json.dumps(payload, indent=1, sort_keys=True)


class TestSeededDeterminism:
    def test_same_seed_same_point_counters(self):
        """shed/batch/latency counters identical across reruns, at
        1, 2, and 4 shards, at the overloaded client count."""
        for shards in (1, 2, 4):
            first, _ = run_point(1_000_000, shards, 0.0, seed=3,
                                 requests=400)
            second, _ = run_point(1_000_000, shards, 0.0, seed=3,
                                  requests=400)
            assert first == second
            assert first["shed"] > 0  # the point is genuinely loaded

    def test_different_seed_differs(self):
        base, _ = run_point(1_000_000, 1, 0.0, seed=0, requests=400)
        other, _ = run_point(1_000_000, 1, 0.0, seed=1, requests=400)
        assert base != other

    def test_quick_payload_byte_identical(self, tmp_path):
        payload_a, _ = build_payload(seed=0, quick=True)
        payload_b, _ = build_payload(seed=0, quick=True)
        assert dumps(payload_a) == dumps(payload_b)
        validate_bench_serving(payload_a)
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        write_payload(payload_a, path_a)
        write_payload(payload_b, path_b)
        assert path_a.read_bytes() == path_b.read_bytes()
