"""Back-pressure is load-bearing, not advisory, in serve mode.

At the overloaded point (1M clients on one shard) the bounded-queue +
shed-on-page pipeline must actually refuse work (shed > 0), and the
refusals must buy something: the throttled run's SLO page rate stays
below the unthrottled run's, and admitted requests complete inside the
latency SLO the unbounded queue blows through.
"""

from repro.bench.experiments.serve import (
    QUEUE_LIMIT,
    SLO_THRESHOLD_NS,
    run_backpressure_comparison,
    run_point,
)


class TestShedding:
    def test_overload_sheds_and_pages_less_than_unthrottled(self):
        comparison, summaries = run_backpressure_comparison(
            seed=0, quick=True)
        throttled = comparison["throttled"]
        unthrottled = comparison["unthrottled"]
        assert throttled["shed"] > 0
        assert unthrottled["shed"] == 0
        assert throttled["page_rate"] < unthrottled["page_rate"]
        assert comparison["backpressure_effective"] is True
        # Bounded queues cap sojourn; the unbounded run does not.
        assert throttled["p99_ns"] <= SLO_THRESHOLD_NS
        assert unthrottled["p99_ns"] > SLO_THRESHOLD_NS
        # The shard_table view carries the shed/queue visibility.
        serving = [s["serving"] for s in summaries if "serving" in s]
        assert sum(s["shed"] for s in serving) == throttled["shed"]
        assert all(s["max_depth"] <= QUEUE_LIMIT for s in serving)

    def test_light_load_never_sheds(self):
        row, pipeline = run_point(10_000, 1, 0.0, seed=0,
                                  requests=500)
        assert row["shed"] == 0
        assert row["completed"] == row["submitted"]
        assert row["page_evals"] == 0
        assert pipeline.service.admission.sheds_enforced == 0

    def test_slo_page_sheds_are_enforced_not_advisory(self):
        """At top load the controller's enforced-shed counter moves:
        the pipeline promoted ``should_shed`` into real refusals."""
        _, pipeline = run_point(1_000_000, 1, 0.0, seed=0,
                                requests=800)
        admission = pipeline.service.admission
        assert admission.sheds_enforced > 0
        assert pipeline.shed_count == admission.sheds_enforced
